#include "sched/optimizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace asv::sched
{

namespace
{

/** One sub-convolution as seen by the scheduler. */
struct SubInfo
{
    int64_t taps = 0;        //!< kernel tap count (product)
    int64_t outElems = 0;    //!< total output positions
    double outRatio = 0.0;   //!< outElems / ifmap positions
    int64_t filterBytes = 0; //!< taps * I * bytes
    int64_t count = 0;       //!< number of filters (out channels)
};

/** A group of sub-convolutions sharing one ifmap. */
struct GroupModel
{
    int64_t ifElems = 0; //!< ifmap spatial positions
    int64_t inChannels = 0;
    int64_t bytesPerElem = 2;
    double overlap = 1.0; //!< halo multiplier for partial tiles
    std::vector<SubInfo> subs;

    int64_t posBytes() const { return inChannels * bytesPerElem; }

    int64_t
    ifBytes(int64_t span) const
    {
        if (span >= ifElems)
            return ifElems * posBytes();
        return static_cast<int64_t>(
            std::ceil(double(span) * overlap)) * posBytes();
    }
};

GroupModel
buildGroup(const deconv::TransformedLayer &layer,
           const std::vector<size_t> &sub_idx, int bytes_per_elem)
{
    GroupModel g;
    g.inChannels = layer.inChannels;
    g.bytesPerElem = bytes_per_elem;
    // Batched inputs stack along the tiled dimension; per-image
    // halo is negligible at this granularity.
    g.ifElems = layer.batch * tensor::numElems(layer.ifmapSpatial);

    // Halo overlap: along each tiled dimension a partial tile reads
    // (kernel - 1) extra positions; charged multiplicatively.
    double overlap = 1.0;
    for (size_t d = 0; d < layer.ifmapSpatial.size(); ++d) {
        int64_t max_k = 1;
        for (size_t s : sub_idx) {
            const auto &dims = layer.subConvs[s].dims;
            max_k = std::max(max_k, dims[d].taps);
        }
        overlap *= 1.0 + double(max_k - 1) /
                             double(layer.ifmapSpatial[d]);
    }
    g.overlap = overlap;

    for (size_t s : sub_idx) {
        const deconv::SubConv &sc = layer.subConvs[s];
        if (sc.empty())
            continue;
        SubInfo si;
        si.taps = tensor::numElems(sc.kernelExtents());
        si.outElems =
            layer.batch * tensor::numElems(sc.outExtents());
        si.outRatio = double(si.outElems) / double(g.ifElems);
        si.filterBytes = si.taps * g.inChannels * g.bytesPerElem;
        si.count = layer.outChannels;
        g.subs.push_back(si);
    }
    return g;
}

/** Filters taken from each sub-kernel in one round. */
using RoundTake = std::vector<int64_t>;

/** A packed round pattern and how many times it repeats. */
struct RoundPattern
{
    RoundTake take;
    int64_t repeats = 1;
};

int64_t
ofBytesPerFilter(const GroupModel &g, size_t k, int64_t span)
{
    const double out = double(std::min(span, g.ifElems)) *
                       g.subs[k].outRatio;
    return static_cast<int64_t>(std::ceil(out)) * g.bytesPerElem;
}

/**
 * Pack one round: choose filters per sub-kernel within @p cap_bytes.
 *
 * Greedy (the paper's heuristic): prioritize filters from large
 * sub-kernels, taking as many of each as fit. With @p exact_dp a
 * bounded-knapsack dynamic program (capacity quantized to 64-byte
 * units) maximizes the MAC value instead; the exhaustive tests use
 * it to bound the greedy optimality gap.
 */
RoundTake
packRound(const GroupModel &g, const std::vector<int64_t> &remaining,
          int64_t span, int64_t cap_bytes, bool exact_dp)
{
    const size_t n = g.subs.size();
    RoundTake take(n, 0);
    if (cap_bytes <= 0)
        return take;

    std::vector<int64_t> item_w(n);
    std::vector<double> item_v(n);
    for (size_t k = 0; k < n; ++k) {
        item_w[k] = g.subs[k].filterBytes + ofBytesPerFilter(g, k,
                                                             span);
        item_v[k] = double(g.subs[k].taps) * g.inChannels *
                    double(std::min(span, g.ifElems)) *
                    g.subs[k].outRatio;
    }

    if (!exact_dp) {
        // Large sub-kernels first (Sec. 4.2).
        std::vector<size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return g.subs[a].taps > g.subs[b].taps;
        });
        int64_t cap = cap_bytes;
        for (size_t k : order) {
            if (remaining[k] <= 0 || item_w[k] <= 0)
                continue;
            const int64_t fit =
                std::min<int64_t>(remaining[k], cap / item_w[k]);
            take[k] = fit;
            cap -= fit * item_w[k];
        }
        return take;
    }

    // Exact bounded knapsack: binary-split counts into 0/1 items.
    constexpr int64_t unit = 64;
    const int64_t capq = cap_bytes / unit;
    if (capq <= 0)
        return take;

    struct Item
    {
        size_t sub;
        int64_t count;
        int64_t wq;
        double val;
    };
    std::vector<Item> items;
    for (size_t k = 0; k < n; ++k) {
        int64_t c = remaining[k], b = 1;
        while (c > 0) {
            const int64_t m = std::min(b, c);
            items.push_back({k, m, ceilDiv(item_w[k] * m, unit),
                             item_v[k] * m});
            c -= m;
            b *= 2;
        }
    }

    std::vector<double> best(capq + 1, 0.0);
    std::vector<std::vector<uint8_t>> keep(
        items.size(), std::vector<uint8_t>(capq + 1, 0));
    for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].wq > capq)
            continue;
        for (int64_t c = capq; c >= items[i].wq; --c) {
            const double v = best[c - items[i].wq] + items[i].val;
            if (v > best[c]) {
                best[c] = v;
                keep[i][c] = 1;
            }
        }
    }
    int64_t c = capq;
    for (size_t i = items.size(); i-- > 0;) {
        if (keep[i][c]) {
            take[items[i].sub] += items[i].count;
            c -= items[i].wq;
        }
    }
    return take;
}

/**
 * Pack all filters into rounds by iterating the single-round packer
 * until every filter is assigned (Eq. 11), collapsing repeated
 * patterns.
 */
bool
packAllRounds(const GroupModel &g, int64_t span, int64_t cap_bytes,
              bool exact_dp, std::vector<RoundPattern> &out)
{
    out.clear();
    std::vector<int64_t> remaining(g.subs.size());
    for (size_t k = 0; k < g.subs.size(); ++k)
        remaining[k] = g.subs[k].count;

    auto left = [&]() {
        return std::accumulate(remaining.begin(), remaining.end(),
                               int64_t(0));
    };

    while (left() > 0) {
        RoundTake take =
            packRound(g, remaining, span, cap_bytes, exact_dp);
        int64_t taken =
            std::accumulate(take.begin(), take.end(), int64_t(0));
        if (taken == 0)
            return false; // not even one filter fits

        // Repeat the same pattern while it remains feasible.
        int64_t reps = std::numeric_limits<int64_t>::max();
        for (size_t k = 0; k < take.size(); ++k)
            if (take[k] > 0)
                reps = std::min(reps, remaining[k] / take[k]);
        reps = std::max<int64_t>(reps, 1);
        for (size_t k = 0; k < take.size(); ++k) {
            take[k] = std::min(take[k], remaining[k]);
            remaining[k] -= take[k] * reps;
        }
        out.push_back({std::move(take), reps});
        panic_if(out.size() > 4096, "round packing diverged");
    }
    return true;
}

/** Cycle cost of one round on the PE array (Eq. 6). */
int64_t
roundComputeCycles(const GroupModel &g, const RoundTake &take,
                   int64_t span, const HardwareConfig &hw)
{
    int64_t cycles = 0;
    const int64_t fill_drain = hw.peRows + hw.peCols;
    for (size_t k = 0; k < take.size(); ++k) {
        if (take[k] == 0)
            continue;
        const double out =
            double(std::min(span, g.ifElems)) * g.subs[k].outRatio;
        const double macs =
            double(g.subs[k].taps) * g.inChannels * take[k] * out;
        cycles += ceilDiv(static_cast<int64_t>(std::ceil(macs)),
                          hw.peCount()) +
                  fill_drain;
    }
    return cycles;
}

int64_t
roundWeightBytes(const GroupModel &g, const RoundTake &take)
{
    int64_t bytes = 0;
    for (size_t k = 0; k < take.size(); ++k)
        bytes += take[k] * g.subs[k].filterBytes;
    return bytes;
}

int64_t
roundOfmapBytes(const GroupModel &g, const RoundTake &take,
                int64_t span)
{
    int64_t bytes = 0;
    for (size_t k = 0; k < take.size(); ++k)
        bytes += take[k] * ofBytesPerFilter(g, k, span);
    return bytes;
}

/**
 * Evaluate a complete schedule for a group under a chosen span and
 * reuse order; returns latency/traffic, or nothing if infeasible.
 */
bool
evaluate(const GroupModel &g, int64_t span, ReuseOrder order,
         int64_t cap_bytes, const HardwareConfig &hw, bool exact_dp,
         LayerSchedule &sched)
{
    const int64_t if_bytes_full = g.ifBytes(span);
    const int64_t cap_rounds = cap_bytes - if_bytes_full;
    if (cap_rounds <= 0)
        return false;

    std::vector<RoundPattern> rounds;
    if (!packAllRounds(g, span, cap_rounds, exact_dp, rounds))
        return false;

    const double bw = hw.dramBytesPerCycle();
    const int64_t tiles = ceilDiv(g.ifElems, span);
    const int64_t last_span = g.ifElems - (tiles - 1) * span;

    sched = LayerSchedule{};
    sched.tileRows = static_cast<int>(std::min<int64_t>(
        span, std::numeric_limits<int>::max()));
    sched.order = order;

    // Total MACs for reporting.
    double macs = 0;
    for (const auto &s : g.subs)
        macs += double(s.taps) * g.inChannels * s.count * s.outElems;
    sched.macs = static_cast<int64_t>(macs);

    auto tile_spans = [&](auto &&fn) {
        if (tiles > 1)
            fn(span, tiles - 1);
        fn(last_span, int64_t(1));
    };

    int64_t lat = 0, comp = 0, mem = 0, nrounds = 0, sram = 0;
    DramTraffic tr;

    if (order == ReuseOrder::IfmapResident) {
        // Outer: ifmap tiles (resident); inner: filter rounds.
        tile_spans([&](int64_t s, int64_t tcount) {
            const int64_t ifb = g.ifBytes(s);
            int64_t tile_lat = 0, tile_comp = 0, tile_mem = 0;
            bool first = true;
            for (const auto &rp : rounds) {
                const int64_t lc =
                    roundComputeCycles(g, rp.take, s, hw);
                const int64_t wb = roundWeightBytes(g, rp.take);
                const int64_t ob = roundOfmapBytes(g, rp.take, s);
                int64_t lm = static_cast<int64_t>(
                    std::ceil(double(wb + ob) / bw));
                const int64_t lm_first =
                    lm + static_cast<int64_t>(
                             std::ceil(double(ifb) / bw));
                // First round of the tile also fills the ifmap.
                tile_lat += std::max(lc, first ? lm_first : lm) +
                            (rp.repeats - 1) * std::max(lc, lm);
                tile_comp += lc * rp.repeats;
                tile_mem += lm * rp.repeats +
                            (first ? lm_first - lm : 0);
                first = false;
                nrounds += rp.repeats * tcount;
                tr.weightBytes += wb * rp.repeats * tcount;
                tr.ofmapBytes += ob * rp.repeats * tcount;
                // Each round streams its working set through SRAM.
                sram += (ifb + wb + ob) * rp.repeats * tcount;
            }
            lat += tile_lat * tcount;
            comp += tile_comp * tcount;
            mem += tile_mem * tcount;
            tr.ifmapBytes += ifb * tcount;
        });
    } else {
        // Outer: filter rounds (weights resident); inner: ifmap
        // tiles streaming through.
        for (const auto &rp : rounds) {
            const int64_t wb = roundWeightBytes(g, rp.take);
            int64_t round_lat = 0, round_comp = 0, round_mem = 0;
            bool first = true;
            tile_spans([&](int64_t s, int64_t tcount) {
                const int64_t ifb = g.ifBytes(s);
                const int64_t lc =
                    roundComputeCycles(g, rp.take, s, hw);
                const int64_t ob = roundOfmapBytes(g, rp.take, s);
                int64_t lm = static_cast<int64_t>(
                    std::ceil(double(ifb + ob) / bw));
                const int64_t lm_first =
                    lm + static_cast<int64_t>(
                             std::ceil(double(wb) / bw));
                round_lat += std::max(lc, first ? lm_first : lm) +
                             (tcount - 1) * std::max(lc, lm);
                round_comp += lc * tcount;
                round_mem += lm * tcount +
                             (first ? lm_first - lm : 0);
                first = false;
                tr.ifmapBytes += ifb * tcount * rp.repeats;
                tr.ofmapBytes += ob * tcount * rp.repeats;
                sram += (ifb + wb + ob) * tcount * rp.repeats;
            });
            lat += round_lat * rp.repeats;
            comp += round_comp * rp.repeats;
            mem += round_mem * rp.repeats;
            nrounds += rp.repeats * tiles;
            tr.weightBytes += wb * rp.repeats;
        }
    }

    sched.latencyCycles = lat;
    sched.computeCycles = comp;
    sched.memoryCycles = mem;
    sched.sramBytes = sram;
    sched.rounds = static_cast<int>(
        std::min<int64_t>(nrounds, std::numeric_limits<int>::max()));
    sched.traffic = tr;
    return true;
}

/** Geometric span candidates: ifElems, ifElems/2, ..., down to 1. */
std::vector<int64_t>
spanCandidates(int64_t if_elems)
{
    std::vector<int64_t> spans;
    for (int64_t s = if_elems; s >= 1; s = s / 2)
        spans.push_back(s);
    if (spans.back() != 1)
        spans.push_back(1);
    return spans;
}

/**
 * Optimize one group: best (span, beta) by evaluated latency, with
 * DRAM traffic as the tie-breaker — among schedules within 2% of
 * the best latency the one moving the fewest bytes wins (latency is
 * the paper's objective, Eq. 3; the tie-break keeps the energy win
 * of ILAR from being squandered by latency-equivalent but
 * traffic-heavy choices).
 */
bool
optimizeGroup(const GroupModel &g, const HardwareConfig &hw,
              bool exact_dp, LayerSchedule &best)
{
    bool found = false;
    for (int64_t span : spanCandidates(g.ifElems)) {
        for (ReuseOrder order : {ReuseOrder::IfmapResident,
                                 ReuseOrder::WeightResident}) {
            LayerSchedule s;
            if (!evaluate(g, span, order, hw.workingBytes(), hw,
                          exact_dp, s))
                continue;
            if (!found) {
                best = s;
                found = true;
                continue;
            }
            const double tol = 1.02;
            const bool much_faster =
                double(s.latencyCycles) * tol <
                double(best.latencyCycles);
            const bool tied_but_lighter =
                double(s.latencyCycles) <=
                    double(best.latencyCycles) * tol &&
                s.traffic.total() < best.traffic.total();
            if (much_faster || tied_but_lighter)
                best = s;
        }
    }
    return found;
}

/**
 * Fixed untuned schedule for the DCT-only ablation: weight-resident
 * order with the largest power-of-two span whose ifmap tile occupies
 * at most half the working buffer.
 */
bool
naiveGroup(const GroupModel &g, const HardwareConfig &hw,
           LayerSchedule &out)
{
    int64_t span = g.ifElems;
    while (span > 1 && g.ifBytes(span) > hw.workingBytes() / 2)
        span /= 2;
    return evaluate(g, span, ReuseOrder::WeightResident,
                    hw.workingBytes(), hw, false, out);
}

} // namespace

LayerSchedule
scheduleTransformedLayer(const deconv::TransformedLayer &layer,
                         const HardwareConfig &hw, OptMode mode)
{
    // Collect non-empty sub-convolutions.
    std::vector<size_t> all;
    for (size_t i = 0; i < layer.subConvs.size(); ++i)
        if (!layer.subConvs[i].empty())
            all.push_back(i);
    panic_if(all.empty(), "layer ", layer.name,
             " has no non-empty sub-convolutions");

    LayerSchedule total;
    total.layerName = layer.name;

    const bool ilar = mode == OptMode::Ilar && layer.fromDeconv &&
                      all.size() > 1;
    if (ilar) {
        GroupModel g = buildGroup(layer, all, hw.bytesPerElem);
        LayerSchedule s;
        fatal_if(!optimizeGroup(g, hw, false, s),
                 "no feasible ILAR schedule for layer ", layer.name);
        s.layerName = layer.name;
        s.usedIlar = true;
        return s;
    }

    // Per-sub-convolution scheduling (Naive / ConvR, and any
    // single-sub-conv layer).
    for (size_t i : all) {
        GroupModel g = buildGroup(layer, {i}, hw.bytesPerElem);
        LayerSchedule s;
        if (mode == OptMode::Naive) {
            fatal_if(!naiveGroup(g, hw, s),
                     "no feasible naive schedule for layer ",
                     layer.name);
        } else {
            fatal_if(!optimizeGroup(g, hw, false, s),
                     "no feasible schedule for layer ", layer.name);
        }
        total += s;
        total.tileRows = s.tileRows;
        total.order = s.order;
    }
    return total;
}

LayerSchedule
scheduleTransformedLayerExact(const deconv::TransformedLayer &layer,
                              const HardwareConfig &hw)
{
    std::vector<size_t> all;
    for (size_t i = 0; i < layer.subConvs.size(); ++i)
        if (!layer.subConvs[i].empty())
            all.push_back(i);
    panic_if(all.empty(), "layer ", layer.name,
             " has no non-empty sub-convolutions");

    GroupModel g = buildGroup(layer, all, hw.bytesPerElem);
    fatal_if(g.ifElems > 4096,
             "exact solver is restricted to small layers");

    LayerSchedule best;
    bool found = false;
    for (int64_t span = 1; span <= g.ifElems; ++span) {
        for (ReuseOrder order : {ReuseOrder::IfmapResident,
                                 ReuseOrder::WeightResident}) {
            LayerSchedule s;
            if (!evaluate(g, span, order, hw.workingBytes(), hw,
                          true, s))
                continue;
            if (!found || s.latencyCycles < best.latencyCycles) {
                best = s;
                found = true;
            }
        }
    }
    fatal_if(!found, "no feasible exact schedule for layer ",
             layer.name);
    best.layerName = layer.name;
    best.usedIlar = layer.fromDeconv && all.size() > 1;
    return best;
}

LayerSchedule
scheduleDenseLayer(const dnn::LayerDesc &layer,
                   const HardwareConfig &hw,
                   const BufferPartition &part)
{
    // Build a single-sub-conv group. Deconvolution executes densely
    // over the zero-inserted upsampled ifmap (its full size is what
    // streams from DRAM in the baseline).
    GroupModel g;
    g.inChannels = layer.inChannels;
    g.bytesPerElem = hw.bytesPerElem;

    const tensor::Shape out = layer.outSpatial();
    int64_t if_elems = 1;
    double overlap = 1.0;
    for (size_t d = 0; d < layer.inSpatial.size(); ++d) {
        int64_t extent = layer.inSpatial[d];
        if (layer.kind == dnn::LayerKind::Deconv)
            extent = out[d] + layer.kernel[d] - 1; // upsampled
        if_elems *= extent;
        const int64_t k =
            layer.kernel.empty() ? 1 : layer.kernel[d];
        overlap *= 1.0 + double(k - 1) / double(extent);
    }
    g.ifElems = layer.batch * if_elems;
    g.overlap = overlap;

    SubInfo si;
    si.taps = layer.kernel.empty() ? 1
                                   : tensor::numElems(layer.kernel);
    if (layer.kind == dnn::LayerKind::CostVolume)
        si.taps = 1;
    si.outElems = layer.batch * tensor::numElems(out);
    si.outRatio = double(si.outElems) / double(g.ifElems);
    si.filterBytes = si.taps * g.inChannels * g.bytesPerElem;
    si.count = layer.outChannels;
    g.subs.push_back(si);

    // Static partition: span limited by the ifmap budget, filters
    // per round by the weight budget; always weight-resident.
    const int64_t if_budget = static_cast<int64_t>(
        part.ifmapFrac * hw.workingBytes());
    const int64_t wo_budget = static_cast<int64_t>(
        (part.weightFrac + part.ofmapFrac) * hw.workingBytes());

    int64_t span = g.ifElems;
    while (span > 1 && g.ifBytes(span) > if_budget)
        span /= 2;

    LayerSchedule s;
    // The evaluate() capacity check subtracts the ifmap bytes, so
    // pass the combined budget of all three partitions.
    fatal_if(!evaluate(g, span, ReuseOrder::WeightResident,
                       g.ifBytes(span) + wo_budget, hw, false, s),
             "no feasible baseline schedule for layer ", layer.name);
    s.layerName = layer.name;
    s.macs = layer.macs(); // dense, zeros included
    return s;
}

BufferPartition
chooseStaticPartition(const std::vector<dnn::LayerDesc> &layers,
                      const HardwareConfig &hw)
{
    BufferPartition best;
    int64_t best_lat = std::numeric_limits<int64_t>::max();
    for (int fi = 1; fi <= 8; ++fi) {
        for (int fw = 1; fw + fi <= 9; ++fw) {
            BufferPartition p;
            p.ifmapFrac = fi / 10.0;
            p.weightFrac = fw / 10.0;
            p.ofmapFrac = 1.0 - p.ifmapFrac - p.weightFrac;
            int64_t lat = 0;
            for (const auto &l : layers) {
                if (l.kind == dnn::LayerKind::Activation ||
                    l.kind == dnn::LayerKind::Pooling)
                    continue;
                lat += scheduleDenseLayer(l, hw, p).latencyCycles;
            }
            if (lat < best_lat) {
                best_lat = lat;
                best = p;
            }
        }
    }
    return best;
}

LayerSchedule
scheduleScalarLayer(const dnn::LayerDesc &layer,
                    const HardwareConfig &hw)
{
    LayerSchedule s;
    s.layerName = layer.name;
    const int64_t ops = layer.macs();
    s.macs = ops;
    // The scalar unit runs at scalarClockGhz with scalarLanes lanes;
    // express latency in accelerator cycles.
    const double ops_per_cycle = hw.scalarLanes *
                                 (hw.scalarClockGhz / hw.clockGhz);
    s.computeCycles = static_cast<int64_t>(
        std::ceil(double(ops) / ops_per_cycle));
    s.latencyCycles = s.computeCycles;
    // Point-wise layers stream activations through the buffer once.
    s.sramBytes = 2 * layer.outActivations() * hw.bytesPerElem;
    s.rounds = 1;
    return s;
}

} // namespace asv::sched
