/**
 * @file
 * Tiling-schedule types and the accelerator hardware configuration.
 *
 * The scheduler reproduces the constrained-optimization formulation
 * of Sec. 4.2: minimize layer latency L = sum_i max(l_c^i, l_m^i)
 * (Eq. 5) subject to the on-chip buffer capacity (Eq. 10) and full
 * filter coverage (Eq. 11), with the reuse order beta in Eq. 7
 * choosing whether the ifmap tile or the sub-kernel weights stay
 * resident across rounds.
 *
 * Tiling model: the ifmap is tiled along its outermost spatial
 * dimension ("rows"; depth slices for 3-D layers) at full width, the
 * natural streaming order for a systolic array. The tile height and
 * the per-round filter assignment C_k are the optimization variables
 * of Fig. 7.
 */

#ifndef ASV_SCHED_SCHEDULE_HH
#define ASV_SCHED_SCHEDULE_HH

#include <cstdint>
#include <string>

#include "common/math_util.hh"

namespace asv::sched
{

/**
 * Accelerator hardware resources (Sec. 6.1 defaults): 24x24 PEs at
 * 1 GHz, 1.5 MB unified double-buffered SRAM, four LPDDR3-1600
 * channels (25.6 GB/s), 16-bit datapath, 8-lane scalar unit at
 * 250 MHz.
 */
struct HardwareConfig
{
    int peRows = 24;
    int peCols = 24;
    double clockGhz = 1.0;
    int64_t bufferBytes = 3 * 512 * 1024; //!< 1.5 MB
    double dramGbps = 25.6;  //!< off-chip bandwidth, GB/s
    int bytesPerElem = 2;    //!< 16-bit fixed point
    int scalarLanes = 8;
    double scalarClockGhz = 0.25;

    /** Total PE count A* (Eq. 6). */
    int64_t peCount() const { return int64_t(peRows) * peCols; }

    /** DRAM bytes transferable per accelerator cycle (B*). */
    double
    dramBytesPerCycle() const
    {
        return dramGbps / clockGhz;
    }

    /**
     * Usable working-set bytes per round. The buffer is split into
     * working and filling halves for double buffering (Sec. 4.2), so
     * a round's data must fit in half the SRAM.
     */
    int64_t workingBytes() const { return bufferBytes / 2; }

    /** Raw peak throughput in ops/s (for reporting). */
    double
    peakOpsPerSecond() const
    {
        return double(peCount()) * clockGhz * 1e9;
    }
};

/** DRAM traffic of one scheduled layer, by stream. */
struct DramTraffic
{
    int64_t ifmapBytes = 0;
    int64_t weightBytes = 0;
    int64_t ofmapBytes = 0;

    int64_t
    total() const
    {
        return ifmapBytes + weightBytes + ofmapBytes;
    }

    DramTraffic &
    operator+=(const DramTraffic &o)
    {
        ifmapBytes += o.ifmapBytes;
        weightBytes += o.weightBytes;
        ofmapBytes += o.ofmapBytes;
        return *this;
    }
};

/** Reuse order beta (Eq. 7). */
enum class ReuseOrder
{
    IfmapResident,  //!< ifmap tile stays, weights stream (Eq. 9)
    WeightResident, //!< weights stay, ifmap tiles stream (Eq. 8)
};

/** The evaluated cost of one layer under a chosen schedule. */
struct LayerSchedule
{
    std::string layerName;
    int64_t macs = 0;           //!< useful ops executed
    int64_t computeCycles = 0;  //!< sum of l_c over rounds
    int64_t memoryCycles = 0;   //!< sum of l_m over rounds
    int64_t latencyCycles = 0;  //!< sum of max(l_c, l_m) (Eq. 5)
    DramTraffic traffic;
    int64_t sramBytes = 0;      //!< on-chip working-set bytes touched
    int rounds = 0;
    int tileRows = 0;           //!< chosen ifmap tile height
    ReuseOrder order = ReuseOrder::WeightResident;
    bool usedIlar = false;      //!< sub-kernels shared ifmap rounds

    LayerSchedule &
    operator+=(const LayerSchedule &o)
    {
        macs += o.macs;
        computeCycles += o.computeCycles;
        memoryCycles += o.memoryCycles;
        latencyCycles += o.latencyCycles;
        traffic += o.traffic;
        sramBytes += o.sramBytes;
        rounds += o.rounds;
        return *this;
    }
};

} // namespace asv::sched

#endif // ASV_SCHED_SCHEDULE_HH
