#include "core/asv_system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "stereo/block_matching.hh"

namespace asv::core
{

const char *
toString(SystemVariant v)
{
    switch (v) {
      case SystemVariant::Baseline: return "Baseline";
      case SystemVariant::IsmOnly: return "ISM";
      case SystemVariant::DcoOnly: return "DCO";
      case SystemVariant::IsmDco: return "DCO+ISM";
    }
    return "?";
}

FrameCost
nonKeyFrameCost(const sched::HardwareConfig &hw,
                const SystemConfig &cfg, const sim::EnergyModel &em)
{
    const int w = cfg.frameWidth, h = cfg.frameHeight;
    const IsmParams &p = cfg.ism;

    const int s = std::max(1, p.flowScale);
    const int fw = std::max(16, w / s);
    const int fh = std::max(16, h / s);

    // Arithmetic split: convolution-like ops run on the PE array
    // (MAC or SAD), point-wise ops on the scalar unit (Sec. 5.1).
    const flow::FarnebackCost fc =
        flow::farnebackCost(fw, fh, p.flowParams);
    const int64_t pe_ops =
        2 * fc.convOps +
        stereo::blockMatchingOps(w, h, p.blockRadius,
                                 2 * p.refineRadius + 1);
    const int64_t scalar_ops =
        2 * fc.pointwiseOps + int64_t(10) * w * h;

    // PE array time: OF/BM layers are small and irregular; charge
    // Eq. 6 style with per-pass fill/drain overheads (one pass per
    // blur direction and per BM row block, approximated as 64
    // passes).
    const int64_t fill_drain = (hw.peRows + hw.peCols) * 64;
    const int64_t pe_cycles =
        ceilDiv(pe_ops, hw.peCount()) + fill_drain;

    const double scalar_per_cycle =
        hw.scalarLanes * (hw.scalarClockGhz / hw.clockGhz);
    const int64_t scalar_cycles = int64_t(
        std::ceil(double(scalar_ops) / scalar_per_cycle));

    // DRAM traffic: current + key frame pixels, motion vectors and
    // the disparity maps; the global buffer keeps the rest resident
    // (>= 512 KB floor, Sec. 5.2).
    const int64_t frame_bytes = int64_t(w) * h * hw.bytesPerElem;
    const int64_t traffic = 6 * frame_bytes;
    const int64_t mem_cycles = int64_t(
        std::ceil(double(traffic) / hw.dramBytesPerCycle()));

    // The scalar unit serializes with the PE array between OF
    // stages; memory overlaps with compute.
    const int64_t cycles =
        std::max(pe_cycles, mem_cycles) + scalar_cycles;

    FrameCost fc_out;
    fc_out.seconds = double(cycles) / (hw.clockGhz * 1e9);
    fc_out.energyJ =
        double(pe_ops) * (em.macPj + em.rfPjPerMac) * 1e-12 +
        double(scalar_ops) * em.scalarOpPj * 1e-12 +
        double(traffic) * em.dramPjPerByte * 1e-12 +
        double(traffic + 4 * frame_bytes) * em.sramPjPerByte *
            1e-12 +
        em.leakageWatts * fc_out.seconds;
    return fc_out;
}

namespace
{

/**
 * Cost of running a classical key-frame engine (SGM/BM) on the
 * SAD-extended PE array: the engine's op count charged the way
 * nonKeyFrameCost charges the OF/BM stages, plus the pair's frame
 * traffic.
 */
FrameCost
classicalKeyFrameCost(const sched::HardwareConfig &hw,
                      const SystemConfig &cfg,
                      const sim::EnergyModel &em, int64_t pe_ops)
{
    const int w = cfg.frameWidth, h = cfg.frameHeight;
    const int64_t fill_drain = (hw.peRows + hw.peCols) * 64;
    const int64_t pe_cycles =
        ceilDiv(pe_ops, hw.peCount()) + fill_drain;

    // Two input frames in, one disparity map out; the cost volume
    // stays resident in the global buffer.
    const int64_t frame_bytes = int64_t(w) * h * hw.bytesPerElem;
    const int64_t traffic = 3 * frame_bytes;
    const int64_t mem_cycles = int64_t(
        std::ceil(double(traffic) / hw.dramBytesPerCycle()));

    const int64_t cycles = std::max(pe_cycles, mem_cycles);
    FrameCost fc;
    fc.seconds = double(cycles) / (hw.clockGhz * 1e9);
    fc.energyJ =
        double(pe_ops) * (em.macPj + em.rfPjPerMac) * 1e-12 +
        double(traffic) * em.dramPjPerByte * 1e-12 +
        double(traffic + 2 * frame_bytes) * em.sramPjPerByte * 1e-12 +
        em.leakageWatts * fc.seconds;
    return fc;
}

} // namespace

SystemResult
simulateSystem(const dnn::Network &net,
               const sched::HardwareConfig &hw,
               SystemVariant variant,
               const std::shared_ptr<const stereo::Matcher> &key_matcher,
               const SystemConfig &cfg, const sim::EnergyModel &em)
{
    SystemResult r;
    r.variant = variant;

    const bool use_dco = variant == SystemVariant::DcoOnly ||
                         variant == SystemVariant::IsmDco;
    const bool use_ism = variant == SystemVariant::IsmOnly ||
                         variant == SystemVariant::IsmDco;

    const int64_t key_ops =
        key_matcher
            ? key_matcher->ops(cfg.frameWidth, cfg.frameHeight)
            : 0;
    if (key_ops > 0) {
        // Classical key-frame engine on the PE array.
        r.keyFrame = classicalKeyFrameCost(hw, cfg, em, key_ops);
    } else {
        r.dnnCost = sim::simulateNetwork(
            net, hw,
            use_dco ? sim::Variant::Ilar : sim::Variant::Baseline,
            em);
        r.keyFrame.seconds = r.dnnCost.seconds(hw);
        r.keyFrame.energyJ = r.dnnCost.energy.total();
    }

    if (use_ism) {
        r.nonKeyFrame = nonKeyFrameCost(hw, cfg, em);
        r.nonKeyOps = nonKeyFrameOps(cfg.frameWidth,
                                     cfg.frameHeight, cfg.ism);
        const int pw = cfg.ism.propagationWindow;
        r.average.seconds =
            (r.keyFrame.seconds + (pw - 1) * r.nonKeyFrame.seconds) /
            pw;
        r.average.energyJ =
            (r.keyFrame.energyJ + (pw - 1) * r.nonKeyFrame.energyJ) /
            pw;
    } else {
        r.average = r.keyFrame;
    }
    return r;
}

SystemResult
simulateSystem(const dnn::Network &net,
               const sched::HardwareConfig &hw,
               SystemVariant variant, const SystemConfig &cfg,
               const sim::EnergyModel &em)
{
    return simulateSystem(net, hw, variant, nullptr, cfg, em);
}

} // namespace asv::core
