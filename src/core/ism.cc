#include "core/ism.hh"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "image/ops.hh"
#include "stereo/postprocess.hh"

namespace asv::core
{

namespace
{

/** KeyFrameFn behind the Matcher engine API (compat shim). */
class CallbackMatcher final : public stereo::Matcher
{
  public:
    explicit CallbackMatcher(KeyFrameFn fn) : fn_(std::move(fn)) {}

    std::string name() const override { return "callback"; }

    stereo::DisparityMap
    compute(const image::Image &left, const image::Image &right,
            const ExecContext &ctx) const override
    {
        (void)ctx; // the callback signature predates ExecContext
        return fn_(left, right);
    }

    /** Unknown cost; charged the pre-Matcher way (to the DNN). */
    int64_t
    ops(int width, int height) const override
    {
        (void)width;
        (void)height;
        return 0;
    }

  private:
    KeyFrameFn fn_;
};

} // namespace

std::shared_ptr<const stereo::Matcher>
makeCallbackMatcher(KeyFrameFn fn)
{
    fatal_if(!fn, "key-frame source is required");
    return std::make_shared<const CallbackMatcher>(std::move(fn));
}

// params is passed by copy, not moved: arguments are indeterminately
// sequenced, so reading propagationWindow here must not race a move
// of the same object.
IsmPipeline::IsmPipeline(
    IsmParams params,
    std::shared_ptr<const stereo::Matcher> key_frame_matcher)
    : IsmPipeline(params, std::move(key_frame_matcher),
                  makeStaticSequencer(params.propagationWindow))
{
}

IsmPipeline::IsmPipeline(
    IsmParams params,
    std::shared_ptr<const stereo::Matcher> key_frame_matcher,
    std::unique_ptr<KeyFrameSequencer> sequencer,
    std::shared_ptr<ThreadPool> pool)
    : params_(std::move(params)),
      keyFrameSource_(std::move(key_frame_matcher)),
      sequencer_(std::move(sequencer)),
      pool_(pool ? std::move(pool)
                 : std::make_shared<ThreadPool>(0))
{
    fatal_if(params_.propagationWindow < 1,
             "propagation window must be >= 1");
    fatal_if(!keyFrameSource_, "key-frame matcher is required");
    fatal_if(!sequencer_, "key-frame sequencer is required");
}

IsmPipeline::IsmPipeline(IsmParams params, KeyFrameFn key_frame_source)
    : IsmPipeline(params, makeCallbackMatcher(std::move(key_frame_source)),
                  makeStaticSequencer(params.propagationWindow))
{
}

IsmPipeline::IsmPipeline(IsmParams params, KeyFrameFn key_frame_source,
                         std::unique_ptr<KeyFrameSequencer> sequencer)
    : IsmPipeline(params, makeCallbackMatcher(std::move(key_frame_source)),
                  std::move(sequencer))
{
}

void
IsmPipeline::reset()
{
    frameIndex_ = 0;
    prevLeft_ = image::Image();
    prevRight_ = image::Image();
    prevDisparity_ = stereo::DisparityMap();
    sequencer_->reset();
}

bool
ismDecideKeyFrame(KeyFrameSequencer &sequencer,
                  const image::Image &left, int64_t frame_index,
                  bool has_prev_disparity)
{
    const bool sequencer_key =
        sequencer.isKeyFrame(left, frame_index);
    const bool is_key = sequencer_key || !has_prev_disparity;
    // Keep stateful sequencers in sync with forced key frames they
    // did not request (first frame after reset, resolution change,
    // or a key-frame source that produced no disparity).
    if (is_key && !sequencer_key)
        sequencer.keyFrameForced(left);
    return is_key;
}

flow::FlowField
ismFlow(const image::Image &from, const image::Image &to,
        const IsmParams &p, const ExecContext &ctx)
{
    const int s = std::max(1, p.flowScale);
    if (p.motion == MotionEstimator::BlockMatching)
        return flow::blockMotion(from, to);
    if (s == 1)
        return flow::farnebackFlow(from, to, p.flowParams, nullptr,
                                   ctx);

    // Motion at reduced resolution, upsampled and rescaled.
    const int sw = std::max(16, from.width() / s);
    const int sh = std::max(16, from.height() / s);
    const image::Image f0 = image::resizeBilinear(from, sw, sh, ctx);
    const image::Image f1 = image::resizeBilinear(to, sw, sh, ctx);
    flow::FlowField small =
        flow::farnebackFlow(f0, f1, p.flowParams, nullptr, ctx);

    flow::FlowField full;
    full.u = image::resizeBilinear(small.u, from.width(),
                                   from.height(), ctx);
    full.v = image::resizeBilinear(small.v, from.width(),
                                   from.height(), ctx);
    const float kx = float(from.width()) / sw;
    const float ky = float(from.height()) / sh;
    for (int64_t i = 0; i < full.u.size(); ++i) {
        full.u.data()[i] *= kx;
        full.v.data()[i] *= ky;
    }
    return full;
}

flow::FlowField
ismFlow(const image::Image &from, const image::Image &to,
        const IsmParams &p)
{
    return ismFlow(from, to, p, ExecContext::global());
}

stereo::DisparityMap
ismPropagate(const image::Image &left, const image::Image &right,
             const stereo::DisparityMap &prev_disparity,
             const flow::FlowField &flow_l,
             const flow::FlowField &flow_r, const IsmParams &p,
             const ExecContext &ctx, const stereo::Matcher *refiner)
{
    const int w = left.width(), h = left.height();
    panic_if(prev_disparity.width() != w ||
                 prev_disparity.height() != h,
             "previous disparity size mismatch");
    panic_if(flow_l.width() != w || flow_l.height() != h ||
                 flow_r.width() != w || flow_r.height() != h,
             "flow field size mismatch");

    // Step 2 + 3: reconstruct correspondence pairs from the previous
    // disparity map and move both endpoints.
    stereo::DisparityMap init =
        image::acquireImageUninit(ctx.buffers(), w, h);
    init.fill(stereo::kInvalidDisparity);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const float d = prev_disparity.at(x, y);
            if (!stereo::isValidDisparity(d))
                continue;
            const float xr = float(x) - d;
            if (xr < 0)
                continue;

            const float xl1 = x + flow_l.u.at(x, y);
            const float yl1 = y + flow_l.v.at(x, y);
            const float xr1 = xr + flow_r.u.sample(xr, float(y));
            const float yr1 =
                float(y) + flow_r.v.sample(xr, float(y));
            (void)yr1; // rectified pairs stay on the same row

            const float d1 = xl1 - xr1;
            const int tx = int(std::lround(xl1));
            const int ty = int(std::lround(yl1));
            if (tx < 0 || tx >= w || ty < 0 || ty >= h)
                continue;
            if (d1 < 0 || d1 > float(p.maxDisparity))
                continue;
            // Nearest surface wins on collisions (occlusion).
            if (!stereo::isValidDisparity(init.at(tx, ty)) ||
                d1 > init.at(tx, ty)) {
                init.at(tx, ty) = d1;
            }
        }
    }

    // Fill scatter holes from row neighbors so that the guided
    // search has a seed everywhere possible.
    for (int pass = 0; pass < 2; ++pass) {
        for (int y = 0; y < h; ++y) {
            for (int xi = 0; xi < w; ++xi) {
                const int x = pass == 0 ? xi : w - 1 - xi;
                if (stereo::isValidDisparity(init.at(x, y)))
                    continue;
                const int nx = pass == 0 ? x - 1 : x + 1;
                if (nx >= 0 && nx < w &&
                    stereo::isValidDisparity(init.at(nx, y)))
                    init.at(x, y) = init.at(nx, y);
            }
        }
    }

    // Step 4: refine around the propagated estimate — by default the
    // guided 1-D SAD search, or an injected guided engine (the
    // range-pruned streaming SGM) seeded with the propagated map.
    stereo::DisparityMap disparity;
    if (refiner != nullptr && refiner->guided()) {
        disparity = refiner->computeGuided(left, right, init, ctx);
    } else {
        stereo::BlockMatchingParams bm;
        bm.blockRadius = p.blockRadius;
        bm.maxDisparity = p.maxDisparity;
        disparity = stereo::refineDisparity(left, right, init,
                                            p.refineRadius, bm, ctx);
    }
    if (p.medianPostprocess)
        disparity = stereo::medianFilter3x3(disparity);
    return disparity;
}

stereo::DisparityMap
ismPropagate(const image::Image &left, const image::Image &right,
             const stereo::DisparityMap &prev_disparity,
             const flow::FlowField &flow_l,
             const flow::FlowField &flow_r, const IsmParams &p)
{
    return ismPropagate(left, right, prev_disparity, flow_l, flow_r,
                        p, ExecContext::global());
}

IsmFrameResult
IsmPipeline::processFrame(const image::Image &left,
                          const image::Image &right)
{
    panic_if(left.width() != right.width() ||
                 left.height() != right.height(),
             "stereo pair size mismatch");

    // A mid-stream resolution change invalidates all temporal state:
    // the stored frames can no longer feed the flow estimator (which
    // panics on a size mismatch) and the previous disparity refers to
    // a different grid. Drop it and restart from a key frame.
    if (!prevLeft_.empty() && (prevLeft_.width() != left.width() ||
                               prevLeft_.height() != left.height())) {
        prevLeft_ = image::Image();
        prevRight_ = image::Image();
        prevDisparity_ = stereo::DisparityMap();
        // The shelved buffers are keyed to the old resolution and
        // will never be reused; drop them so cycling resolutions
        // keeps resident bytes bounded by one resolution's working
        // set instead of accumulating every size ever seen.
        buffers_->trim(0);
    }

    IsmFrameResult result;
    const bool is_key = ismDecideKeyFrame(
        *sequencer_, left, frameIndex_, !prevDisparity_.empty());
    ++frameIndex_;

    const ExecContext ctx(*pool_, *buffers_);
    if (is_key) {
        // Step 1: "DNN inference" — the key-frame engine. Classical
        // engines report their real op count; oracle/callback
        // sources report 0 (charged to the DNN accelerator models).
        result.disparity = keyFrameSource_->compute(left, right, ctx);
        // Enforce the matcher output contract here (mirroring
        // StreamPipeline) so a misbehaving engine fails loudly at
        // the key frame instead of corrupting the propagation chain.
        // An *empty* map stays tolerated: the next frame is forced
        // to be a key frame (see ismDecideKeyFrame).
        if (!result.disparity.empty() &&
            (result.disparity.width() != left.width() ||
             result.disparity.height() != left.height()))
            throw std::runtime_error(
                "key-frame matcher '" + keyFrameSource_->name() +
                "' returned a " +
                std::to_string(result.disparity.width()) + "x" +
                std::to_string(result.disparity.height()) +
                " disparity map for a " +
                std::to_string(left.width()) + "x" +
                std::to_string(left.height()) + " pair");
        result.keyFrame = true;
        result.arithmeticOps =
            keyFrameSource_->ops(left.width(), left.height());
    } else {
        // Step 3: propagate both sides by dense optical flow, then
        // steps 2-4: move the correspondences and refine.
        const flow::FlowField flow_l =
            ismFlow(prevLeft_, left, params_, ctx);
        const flow::FlowField flow_r =
            ismFlow(prevRight_, right, params_, ctx);
        result.disparity =
            ismPropagate(left, right, prevDisparity_, flow_l, flow_r,
                         params_, ctx, refiner_.get());
        result.keyFrame = false;
        result.arithmeticOps =
            nonKeyFrameOps(left.width(), left.height(), params_);
        if (refiner_ && refiner_->guided()) {
            // The injected engine replaces the SAD refinement; its
            // own estimate is the honest charge for that step.
            result.arithmeticOps +=
                refiner_->ops(left.width(), left.height());
        }
    }

    prevLeft_ = left;
    prevRight_ = right;
    prevDisparity_ = result.disparity;
    return result;
}

int64_t
nonKeyFrameOps(int width, int height, const IsmParams &p)
{
    const int s = std::max(1, p.flowScale);
    const int fw = std::max(16, width / s);
    const int fh = std::max(16, height / s);

    // Two optical flows (left-left and right-right).
    const flow::FarnebackCost fc =
        flow::farnebackCost(fw, fh, p.flowParams);
    int64_t ops = 2 * fc.total();

    // Correspondence reconstruction + propagation scatter: ~10
    // point ops per pixel (Sec. 3.3 calls this negligible).
    ops += int64_t(10) * width * height;

    // Guided refinement: (2r+1) candidates per pixel.
    ops += stereo::blockMatchingOps(width, height, p.blockRadius,
                                    2 * p.refineRadius + 1);
    return ops;
}

} // namespace asv::core
