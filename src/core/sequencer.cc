#include "core/sequencer.hh"

#include "common/logging.hh"
#include "image/ops.hh"

namespace asv::core
{

StaticSequencer::StaticSequencer(int propagation_window)
    : window_(propagation_window)
{
    fatal_if(window_ < 1, "propagation window must be >= 1");
}

bool
StaticSequencer::isKeyFrame(const image::Image &, int64_t frame_index)
{
    return frame_index % window_ == 0;
}

AdaptiveSequencer::AdaptiveSequencer(double change_threshold,
                                     int max_window)
    : threshold_(change_threshold), maxWindow_(max_window)
{
    fatal_if(max_window < 1, "max window must be >= 1");
    fatal_if(change_threshold <= 0.0,
             "change threshold must be positive");
}

void
AdaptiveSequencer::reset()
{
    sinceKey_ = 0;
    lastKey_ = image::Image();
}

bool
AdaptiveSequencer::isKeyFrame(const image::Image &left,
                              int64_t frame_index)
{
    bool key = false;
    if (frame_index == 0 || lastKey_.empty()) {
        key = true;
    } else if (sinceKey_ + 1 >= maxWindow_) {
        key = true;
    } else if (left.width() == lastKey_.width() &&
               left.height() == lastKey_.height()) {
        key = image::meanAbsDiff(left, lastKey_) > threshold_;
    } else {
        key = true; // resolution change: restart
    }

    if (key) {
        lastKey_ = left;
        sinceKey_ = 0;
    } else {
        ++sinceKey_;
    }
    return key;
}

void
AdaptiveSequencer::keyFrameForced(const image::Image &left)
{
    // The frame ran as a key frame even though isKeyFrame() said no:
    // re-anchor the reference image and the window counter so change
    // detection tracks the key frame that actually executed.
    lastKey_ = left;
    sinceKey_ = 0;
}

std::unique_ptr<KeyFrameSequencer>
makeStaticSequencer(int pw)
{
    return std::make_unique<StaticSequencer>(pw);
}

std::unique_ptr<KeyFrameSequencer>
makeAdaptiveSequencer(double change_threshold, int max_window)
{
    return std::make_unique<AdaptiveSequencer>(change_threshold,
                                               max_window);
}

} // namespace asv::core
