/**
 * @file
 * System-level ASV simulation (Sec. 5): the full stereo vision
 * system combining the ISM algorithm with the deconvolution
 * optimizations on the co-designed accelerator.
 *
 * Key frames run the stereo DNN on the systolic accelerator (with or
 * without the deconvolution optimizations). Non-key frames run the
 * OF + BM pipeline mapped onto the same hardware (Sec. 5.1): Gaussian
 * blur and SAD block matching on the (SAD-extended) PE array,
 * compute-flow / matrix-update on the extended scalar unit. The
 * sequencer selects key frames with a static propagation window
 * (Sec. 5.2).
 */

#ifndef ASV_CORE_ASV_SYSTEM_HH
#define ASV_CORE_ASV_SYSTEM_HH

#include <memory>

#include "core/ism.hh"
#include "dnn/network.hh"
#include "sched/schedule.hh"
#include "sim/accelerator.hh"
#include "sim/energy.hh"
#include "stereo/matcher.hh"

namespace asv::core
{

/** The four system variants of the evaluation (Sec. 6.2). */
enum class SystemVariant
{
    Baseline, //!< stereo DNN every frame, generic accelerator
    IsmOnly,  //!< ISM algorithm, unoptimized DNN on key frames
    DcoOnly,  //!< deconv optimizations, DNN every frame
    IsmDco,   //!< full ASV
};

const char *toString(SystemVariant v);

/** System-level configuration. */
struct SystemConfig
{
    /** Frame geometry for the OF/BM stages (qHD per Sec. 5.2). */
    int frameWidth = 960;
    int frameHeight = 540;

    /**
     * ISM cost parameters at deployment scale: motion at quarter
     * resolution, 5x5 blocks, +-2 refinement — the configuration
     * whose non-key cost is ~87 Mops at qHD (Sec. 3.3).
     */
    IsmParams ism{4, 2, 2, 64, 4, {2, 2, 3, 1.2, 5}};
};

/** Latency/energy of one frame class. */
struct FrameCost
{
    double seconds = 0.0;
    double energyJ = 0.0;
};

/** Result of a system-level simulation. */
struct SystemResult
{
    SystemVariant variant = SystemVariant::Baseline;
    FrameCost keyFrame;     //!< DNN inference frame
    FrameCost nonKeyFrame;  //!< OF + BM frame (zero for non-ISM)
    FrameCost average;      //!< amortized over the window
    sim::NetworkCost dnnCost;
    int64_t nonKeyOps = 0;

    double
    fps() const
    {
        return average.seconds > 0 ? 1.0 / average.seconds : 0.0;
    }
};

/**
 * Simulate the steady-state per-frame cost of a variant.
 *
 * @param net     stereo DNN used on key frames
 * @param hw      accelerator resources
 * @param variant system variant
 * @param cfg     system configuration
 * @param em      energy constants
 */
SystemResult simulateSystem(const dnn::Network &net,
                            const sched::HardwareConfig &hw,
                            SystemVariant variant,
                            const SystemConfig &cfg = {},
                            const sim::EnergyModel &em = {});

/**
 * As above, but with an explicit key-frame engine. A matcher whose
 * ops() is positive (a classical engine: SGM, full-search BM — the
 * Fig. 1 baselines) replaces DNN inference on key frames: its op
 * count is charged to the SAD-extended PE array the way non-key
 * frames are, giving the classical end of the Fig. 1
 * accuracy/performance frontier at system level. A null matcher or
 * one reporting 0 ops (oracle, callback) falls back to the DNN cost
 * model — identical to the overload above.
 */
SystemResult simulateSystem(const dnn::Network &net,
                            const sched::HardwareConfig &hw,
                            SystemVariant variant,
                            const std::shared_ptr<const stereo::Matcher> &key_matcher,
                            const SystemConfig &cfg = {},
                            const sim::EnergyModel &em = {});

/**
 * Cost of one non-key frame on the accelerator: OF conv ops and BM
 * SAD ops on the PE array, point-wise OF ops on the scalar unit,
 * frame traffic through DRAM.
 */
FrameCost nonKeyFrameCost(const sched::HardwareConfig &hw,
                          const SystemConfig &cfg,
                          const sim::EnergyModel &em);

} // namespace asv::core

#endif // ASV_CORE_ASV_SYSTEM_HH
