#include "core/stream_pipeline.hh"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace asv::core
{

struct StreamPipeline::FrameCompletion
{
    explicit FrameCompletion(StreamPipeline *p) : pipeline(p) {}
    ~FrameCompletion() { pipeline->markFrameComplete(); }
    FrameCompletion(const FrameCompletion &) = delete;
    FrameCompletion &operator=(const FrameCompletion &) = delete;

    StreamPipeline *pipeline;
};

StreamPipeline::StreamPipeline(
    IsmParams params,
    std::shared_ptr<const stereo::Matcher> key_frame_matcher,
    StreamParams stream)
    // params is passed by copy, not moved: arguments are
    // indeterminately sequenced, so reading propagationWindow here
    // must not race a move of the same object.
    : StreamPipeline(params, std::move(key_frame_matcher),
                     makeStaticSequencer(params.propagationWindow),
                     stream)
{
}

StreamPipeline::StreamPipeline(IsmParams params,
                               KeyFrameFn key_frame_source,
                               StreamParams stream)
    : StreamPipeline(params,
                     makeCallbackMatcher(std::move(key_frame_source)),
                     makeStaticSequencer(params.propagationWindow),
                     stream)
{
}

StreamPipeline::StreamPipeline(IsmParams params,
                               KeyFrameFn key_frame_source,
                               std::unique_ptr<KeyFrameSequencer> sequencer,
                               StreamParams stream)
    : StreamPipeline(params,
                     makeCallbackMatcher(std::move(key_frame_source)),
                     std::move(sequencer), stream)
{
}

StreamPipeline::StreamPipeline(
    IsmParams params,
    std::shared_ptr<const stereo::Matcher> key_frame_matcher,
    std::unique_ptr<KeyFrameSequencer> sequencer,
    StreamParams stream)
    : params_(std::move(params)),
      keyFrameSource_(std::move(key_frame_matcher)),
      sequencer_(std::move(sequencer))
{
    fatal_if(params_.propagationWindow < 1,
             "propagation window must be >= 1");
    fatal_if(!keyFrameSource_, "key-frame matcher is required");
    fatal_if(!sequencer_, "key-frame sequencer is required");
    fatal_if(stream.maxInFlight < 1, "maxInFlight must be >= 1");
    fatal_if(stream.workers < 0, "workers must be >= 0");

    maxInFlight_ = stream.maxInFlight;
    if (stream.sharedPool) {
        // Multiplexed serving: many pipelines on one injected pool.
        // The pool needs at least one worker thread — a pool of 1
        // runs submit() tasks inline, which would make a blocking
        // propagate stage deadlock the dispatcher.
        fatal_if(stream.sharedPool->numThreads() < 2,
                 "a shared StreamPipeline pool needs >= 2 threads "
                 "(N - 1 stage executors)");
        pool_ = stream.sharedPool;
        workers_ = pool_->numThreads() - 1;
    } else {
        workers_ = stream.workers > 0 ? stream.workers
                                      : ThreadPool::defaultThreads();
        // A pool of N owns N - 1 OS threads because parallelFor()
        // callers execute one chunk themselves; submit() callers do
        // not, so +1 yields exactly workers_ executor threads for
        // the stages.
        pool_ = std::make_shared<ThreadPool>(workers_ + 1);
    }
}

StreamPipeline::~StreamPipeline()
{
    // Every stage lambda captures `this`, so all of them must have
    // retired before the members go away. The completion counter
    // covers exactly that: a frame's final stage bumps completed_,
    // and its completion implies its flow-stage futures were
    // consumed. Waiting here (instead of relying on the pool join)
    // is what makes an injected shared pool safe — other pipelines'
    // stages keep running on it after this one is gone.
    {
        MutexLock lock(mutex_);
        while (completed_ < submitted_)
            lock.wait(backpressure_);
    }
    // Private pool: last owner, joins the executors. Shared pool:
    // just drops the reference.
    pool_.reset();
}

void
StreamPipeline::markFrameComplete()
{
    // Notify under the lock: the destructor may be waiting on
    // backpressure_, and with a shared executor pool nothing else
    // keeps this object alive until an unlocked notify finishes —
    // the waiter must not be able to wake, destroy the pipeline,
    // and leave this thread touching a dead condition variable.
    MutexLock lock(mutex_);
    ++completed_;
    backpressure_.notify_all();
}

int
StreamPipeline::inFlight() const
{
    MutexLock lock(mutex_);
    return static_cast<int>(submitted_ - completed_);
}

StreamPipeline::Stats
StreamPipeline::stats() const
{
    MutexLock lock(mutex_);
    return {submitted_, completed_,
            static_cast<int>(submitted_ - completed_)};
}

bool
StreamPipeline::frontReady() const
{
    if (slots_.empty())
        return false;
    return slots_.front().disparity.wait_for(
               std::chrono::seconds(0)) == std::future_status::ready;
}

int64_t
StreamPipeline::submit(const image::Image &left,
                       const image::Image &right)
{
    panic_if(left.width() != right.width() ||
                 left.height() != right.height(),
             "stereo pair size mismatch");

    // Backpressure: wait until fewer than maxInFlight frames are
    // submitted but uncomputed. Workers make progress independently
    // of this thread, so the wait always terminates.
    int64_t ticket;
    {
        MutexLock lock(mutex_);
        while (submitted_ - completed_ >= maxInFlight_)
            lock.wait(backpressure_);
        ticket = submitted_++;
    }

    // Mirror IsmPipeline::processFrame: drop temporal state on a
    // resolution change, then make the shared key/non-key decision
    // (ismDecideKeyFrame — the same code the serial loop runs, which
    // is what keeps the key-frame pattern and every downstream
    // result bit-identical). A default-constructed prevDisparity_
    // future is !valid(), standing in for the serial pipeline's
    // prevDisparity_.empty().
    if (prevLeft_ && (prevLeft_->width() != left.width() ||
                      prevLeft_->height() != left.height())) {
        prevLeft_.reset();
        prevRight_.reset();
        prevDisparity_ = {};
        // Shelved buffers are keyed to the old resolution and will
        // never be recycled again; drop them so cycling resolutions
        // keeps resident bytes bounded. Frames still in flight at
        // the old size simply re-shelve on retirement and are
        // trimmed at the next flip (or by setHighWaterBytes).
        buffers_->trim(0);
    }
    const bool is_key = ismDecideKeyFrame(
        *sequencer_, left, frameIndex_, prevDisparity_.valid());
    ++frameIndex_;

    // One snapshot per image (the caller may mutate its buffers
    // after submit returns); the stage lambdas share the snapshot
    // instead of deep-copying the frame per stage.
    auto left_ptr = std::make_shared<const image::Image>(left);
    auto right_ptr = std::make_shared<const image::Image>(right);

    Slot slot;
    slot.keyFrame = is_key;
    slot.arithmeticOps =
        is_key ? keyFrameSource_->ops(left.width(), left.height())
               : nonKeyFrameOps(left.width(), left.height(), params_);
    if (!is_key && refiner_ && refiner_->guided()) {
        // Mirror IsmPipeline: an injected refinement engine is
        // charged with its own op estimate.
        slot.arithmeticOps +=
            refiner_->ops(left.width(), left.height());
    }

    if (is_key) {
        // Key-frame inference depends only on the submitted pair.
        // The matcher contract (non-empty, pair-sized output) is
        // enforced here, at stage completion, so a misbehaving
        // engine fails this frame loudly instead of corrupting the
        // frames propagating from it.
        slot.disparity =
            pool_->submit([this, l = left_ptr, r = right_ptr]() {
                     FrameCompletion done(this);
                     stereo::DisparityMap d = keyFrameSource_->compute(
                         *l, *r, ExecContext(*pool_, *buffers_));
                     if (d.empty())
                         throw std::runtime_error(
                             "streaming key-frame matcher '" +
                             keyFrameSource_->name() +
                             "' returned an empty disparity map");
                     if (d.width() != l->width() ||
                         d.height() != l->height())
                         throw std::runtime_error(
                             "streaming key-frame matcher '" +
                             keyFrameSource_->name() + "' returned a " +
                             std::to_string(d.width()) + "x" +
                             std::to_string(d.height()) +
                             " disparity map for a " +
                             std::to_string(l->width()) + "x" +
                             std::to_string(l->height()) + " pair");
                     return d;
                 })
                .share();
    } else {
        // Flow estimation — the dominant non-key cost — needs only
        // the two input frames: dispatch both sides eagerly, in
        // parallel with the predecessor still in flight.
        auto flow_l =
            pool_->submit([this, from = prevLeft_, to = left_ptr]() {
                     return ismFlow(*from, *to, params_,
                                    ExecContext(*pool_, *buffers_));
                 })
                .share();
        auto flow_r =
            pool_->submit(
                     [this, from = prevRight_, to = right_ptr]() {
                         return ismFlow(*from, *to, params_,
                                        ExecContext(*pool_, *buffers_));
                     })
                .share();
        // Propagation chains on the predecessor's disparity future.
        // Safe to block in a worker: FIFO execution means every
        // future waited on here belongs to a task popped from the
        // queue earlier, so the dependency chain always bottoms out
        // at a running, non-blocking stage.
        auto prev = prevDisparity_;
        auto refiner = refiner_;
        slot.disparity =
            pool_->submit([this, l = left_ptr, r = right_ptr,
                           flow_l, flow_r, prev, refiner]() {
                     FrameCompletion done(this);
                     return ismPropagate(*l, *r, prev.get(),
                                         flow_l.get(), flow_r.get(),
                                         params_,
                                         ExecContext(*pool_, *buffers_),
                                         refiner.get());
                 })
                .share();
    }

    prevLeft_ = std::move(left_ptr);
    prevRight_ = std::move(right_ptr);
    prevDisparity_ = slot.disparity;
    slots_.push_back(std::move(slot));
    return ticket;
}

IsmFrameResult
StreamPipeline::next()
{
    fatal_if(slots_.empty(), "next() called with no frame pending");
    Slot slot = std::move(slots_.front());
    slots_.pop_front();

    IsmFrameResult result;
    result.keyFrame = slot.keyFrame;
    result.arithmeticOps = slot.arithmeticOps;
    result.disparity = slot.disparity.get(); // blocks; may rethrow
    return result;
}

std::vector<IsmFrameResult>
StreamPipeline::drain()
{
    std::vector<IsmFrameResult> results;
    results.reserve(slots_.size());
    while (!slots_.empty())
        results.push_back(next());
    return results;
}

void
StreamPipeline::reset()
{
    // wait() never throws, so a poisoned stream is discarded
    // silently (unlike next()/drain(), which rethrow).
    for (const Slot &slot : slots_)
        slot.disparity.wait();
    slots_.clear();

    {
        MutexLock lock(mutex_);
        // Every frame's final stage has retired (its future is
        // ready), so the counters are quiescent.
        submitted_ = 0;
        completed_ = 0;
    }
    frameIndex_ = 0;
    prevLeft_.reset();
    prevRight_.reset();
    prevDisparity_ = {};
    sequencer_->reset();
    // All in-flight work has retired (every future above is ready),
    // so this empties the arena completely for the next sequence.
    buffers_->trim(0);
}

} // namespace asv::core
