/**
 * @file
 * Streaming execution layer for the ISM pipeline: multiple frames in
 * flight over a bounded, ordered queue.
 *
 * ASV's premise is a continuous stereo *stream* (Sec. 5.2): key
 * frames run the expensive DNN, non-key frames run the cheap ISM
 * propagation. The serial IsmPipeline retires one frame completely
 * before starting the next, leaving the worker pool idle between
 * frames. StreamPipeline overlaps stages across frames, the way
 * real-time stereo systems (SceneScan, Fan et al. 2018) earn their
 * throughput:
 *
 *  - The key/non-key decision is made up front on the submission
 *    thread: the sequencer is cheap and stateful, so running it at
 *    submit() keeps its state identical to the serial pipeline's.
 *  - Key-frame inference depends only on the submitted pair and is
 *    dispatched immediately.
 *  - For non-key frames, the two optical flows — the dominant
 *    non-key cost — depend only on the previous and current *input*
 *    frames, so they also start immediately, in parallel with
 *    whatever the predecessor is still computing.
 *  - Only the propagate+refine stage needs the predecessor's
 *    disparity; it is chained on the predecessor's future.
 *
 * Delivery is a ticketed reorder buffer: next() returns results in
 * exact submission order regardless of completion order. submit()
 * applies backpressure once maxInFlight frames are undelivered by
 * the workers.
 *
 * Determinism contract (extends the PR-1 thread-pool contract):
 * every stage runs the same code the serial pipeline runs (ismFlow,
 * ismPropagate, the key-frame source), on inputs that are equal by
 * construction, so the stream of results is bit-identical to the
 * serial processFrame() loop for any maxInFlight and worker count —
 * provided the key-frame source is a pure function of its inputs.
 *
 * Requirements on the key-frame matcher: it may be invoked
 * concurrently from worker threads (two key frames can be in flight
 * at once — the Matcher thread-safety contract), and it must return
 * a non-empty disparity map matching the submitted pair's
 * dimensions; a violation is detected at stage completion and
 * surfaces from next()/drain() as a std::runtime_error rather than
 * corrupting downstream propagation. (The serial pipeline tolerates
 * an empty key map by forcing the *next* frame to be a key frame —
 * a decision that cannot be made eagerly at submission time.)
 *
 * Threading: submit()/next()/drain()/reset() must be called from a
 * single driver thread. The pipeline owns its executor threads and
 * never blocks a worker on a dependency that was not submitted
 * before it (FIFO execution order makes the chain deadlock-free).
 * All stage kernels take their ExecContext from the pipeline's own
 * pool — a StreamPipeline never touches ThreadPool::global(), so
 * co-resident pipelines (multi-tenant serving) are fully isolated.
 * Inside a worker a nested parallelFor on the same pool runs
 * serially; with frames in flight the workers *are* the
 * parallelism.
 */

#ifndef ASV_CORE_STREAM_PIPELINE_HH
#define ASV_CORE_STREAM_PIPELINE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "core/ism.hh"
#include "core/sequencer.hh"
#include "image/image.hh"
#include "stereo/disparity.hh"

namespace asv::core
{

/** Streaming execution parameters. */
struct StreamParams
{
    /**
     * Maximum number of submitted-but-uncomputed frames; submit()
     * blocks once the bound is reached. 1 degenerates to the serial
     * pipeline (each submit waits for the previous frame).
     *
     * Note this bounds *compute*, not retained memory: a computed
     * result stays in the reorder buffer until next()/drain()
     * collects it, so a driver that submits a long video without
     * ever delivering accumulates one disparity map per frame.
     * Interleave submit() with next() to bound memory too. (Bounding
     * on undelivered frames instead would deadlock the natural
     * submit-all-then-drain pattern.)
     */
    int maxInFlight = 4;

    /**
     * Dedicated executor threads running the frame stages.
     * 0 = ThreadPool::defaultThreads() (honours ASV_THREADS).
     * Ignored when sharedPool is set.
     */
    int workers = 0;

    /**
     * Run the frame stages on this pool instead of a private one —
     * the asv::serve pattern: one worker pool multiplexed across
     * many co-resident pipelines, so N streams cost W threads, not
     * N * W. The FIFO dependency-safety argument still holds across
     * pipelines sharing a pool as long as every pipeline's stages
     * are submitted from a single thread in dependency order (each
     * pipeline's own single-driver contract): a stage only ever
     * waits on futures of tasks enqueued before it, and FIFO
     * execution pops those first. The pool must have at least one
     * worker thread (size >= 2); a ThreadPool of N gives the
     * pipelines N - 1 stage executors.
     */
    std::shared_ptr<ThreadPool> sharedPool;
};

/**
 * Bounded, ordered, multi-frame-in-flight execution of the ISM
 * pipeline. See the file comment for the execution model and the
 * determinism contract.
 */
class StreamPipeline
{
  public:
    /**
     * Key frames run @p key_frame_matcher (any registered engine —
     * see stereo::makeMatcher); static cadence from
     * params.propagationWindow.
     */
    StreamPipeline(IsmParams params,
                   std::shared_ptr<const stereo::Matcher> key_frame_matcher,
                   StreamParams stream = {});

    /** Matcher key-frame source with a custom sequencing policy. */
    StreamPipeline(IsmParams params,
                   std::shared_ptr<const stereo::Matcher> key_frame_matcher,
                   std::unique_ptr<KeyFrameSequencer> sequencer,
                   StreamParams stream = {});

    /** Compatibility: raw-callback key-frame source. */
    StreamPipeline(IsmParams params, KeyFrameFn key_frame_source,
                   StreamParams stream = {});

    /** Compatibility: raw callback + custom key-frame policy. */
    StreamPipeline(IsmParams params, KeyFrameFn key_frame_source,
                   std::unique_ptr<KeyFrameSequencer> sequencer,
                   StreamParams stream = {});

    /** Waits for all in-flight frames, then releases the executor
     *  pool (joining it when this pipeline owns it privately). */
    ~StreamPipeline();

    StreamPipeline(const StreamPipeline &) = delete;
    StreamPipeline &operator=(const StreamPipeline &) = delete;

    /**
     * Submit the next frame of the stereo video. Decides key/non-key
     * (updating the sequencer), dispatches the frame's stages, and
     * returns its ticket (0-based submission index, the order next()
     * delivers in). Blocks while maxInFlight frames are in flight.
     */
    int64_t submit(const image::Image &left,
                   const image::Image &right);

    /**
     * Deliver the oldest undelivered frame's result, blocking until
     * it is computed. Results come back in exact submission order.
     * Rethrows any exception the frame's stages raised (a poisoned
     * stream is cleared with reset()). Fatal if nothing is pending.
     */
    IsmFrameResult next();

    /**
     * Deliver every outstanding frame, in order. If a frame's stages
     * threw, drain() rethrows at that frame and the results already
     * collected (frames before it) are lost — when per-frame error
     * handling matters, consume with next() instead.
     */
    std::vector<IsmFrameResult> drain();

    /**
     * Wait for all in-flight work, discard undelivered results, and
     * forget all temporal state (start of a new sequence). Never
     * throws away the executors; the pipeline is reusable.
     */
    void reset();

    /** Frames submitted but not yet delivered. */
    bool pending() const { return !slots_.empty(); }

    /** Frames submitted but whose disparity is not yet computed. */
    int inFlight() const;

    /**
     * Point-in-time streaming counters, safe to read from any
     * thread — the external face of the backpressure accounting
     * (the serving heartbeat reads this; see asv::serve).
     */
    struct Stats
    {
        int64_t submitted = 0; //!< frames accepted by submit()
        int64_t completed = 0; //!< frames whose final stage retired
        int inFlight = 0;      //!< submitted - completed
    };
    Stats stats() const;

    /**
     * True when the oldest undelivered frame's result is already
     * computed, i.e. next() would return without blocking. Driver
     * thread only (like next()); false when nothing is pending.
     * This is what lets a multi-stream driver (asv::serve's
     * dispatcher) collect results from many pipelines without ever
     * parking on one of them.
     */
    bool frontReady() const;

    int maxInFlight() const { return maxInFlight_; }
    int workers() const { return workers_; }
    const IsmParams &params() const { return params_; }

    /** The key-frame engine. */
    const stereo::Matcher &matcher() const { return *keyFrameSource_; }

    /**
     * Replace the non-key refinement engine (null restores the
     * default guided 1-D SAD search) — same seam as
     * IsmPipeline::setRefiner(), so the two pipelines stay
     * bit-identical under the same refiner. The engine is invoked
     * from worker threads and must honor the Matcher thread-safety
     * contract. Call between frames, not concurrently with submit().
     */
    void
    setRefiner(std::shared_ptr<const stereo::Matcher> refiner)
    {
        refiner_ = std::move(refiner);
    }

    /**
     * The buffer arena every stage of every in-flight frame recycles
     * through — private to this pipeline. BufferPool is internally
     * synchronized, so concurrent stages share it safely.
     */
    BufferPool &buffers() const { return *buffers_; }

  private:
    /** Reorder-buffer entry for one submitted frame. */
    struct Slot
    {
        std::shared_future<stereo::DisparityMap> disparity;
        bool keyFrame = false;
        int64_t arithmeticOps = 0;
    };

    /** RAII completion marker run at the end of a frame's final
     *  stage (even on exception): releases backpressure. */
    struct FrameCompletion;

    void markFrameComplete();

    IsmParams params_;
    std::shared_ptr<const stereo::Matcher> keyFrameSource_;
    std::shared_ptr<const stereo::Matcher> refiner_; //!< null = SAD
    std::unique_ptr<KeyFrameSequencer> sequencer_;
    int maxInFlight_ = 1;
    int workers_ = 1;
    std::shared_ptr<ThreadPool> pool_; //!< private or injected shared
    std::shared_ptr<BufferPool> buffers_ =
        std::make_shared<BufferPool>();

    // Submission-thread state, mirroring IsmPipeline exactly; an
    // invalid prevDisparity_ future plays the serial pipeline's
    // "prevDisparity_.empty()" role. Frames are snapshotted once
    // per submit into shared immutable images so the stage lambdas
    // capture pointers, not deep copies. Driver-thread-only by the
    // single-driver API contract (workers only ever see the
    // shared_ptr/shared_future copies the stage lambdas captured),
    // so none of it is mutex-protected — mutex_ below guards exactly
    // the state the workers write.
    int64_t frameIndex_ = 0;
    std::shared_ptr<const image::Image> prevLeft_;
    std::shared_ptr<const image::Image> prevRight_;
    std::shared_future<stereo::DisparityMap> prevDisparity_;

    // Reorder buffer (driver thread only); front = oldest ticket.
    std::deque<Slot> slots_;

    // Shared with workers: completion accounting for backpressure.
    // submitted_ - completed_ = frames in flight; submit() waits on
    // backpressure_ until it drops below maxInFlight_.
    mutable Mutex mutex_;
    std::condition_variable backpressure_;
    int64_t submitted_ ASV_GUARDED_BY(mutex_) = 0;
    int64_t completed_ ASV_GUARDED_BY(mutex_) = 0;
};

} // namespace asv::core

#endif // ASV_CORE_STREAM_PIPELINE_HH
