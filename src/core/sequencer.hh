/**
 * @file
 * Key-frame sequencing policies (Sec. 5.2).
 *
 * The paper's micro-sequencer statically selects every PW-th frame
 * as a key frame and notes that "complex adaptive schemes are
 * feasible [14, 78]" but that the static strategy suffices. Both are
 * provided: the static policy used throughout the evaluation, and an
 * adaptive policy that triggers a key frame when the accumulated
 * scene change since the last key frame crosses a threshold —
 * letting slow scenes stretch the window (more savings) and fast
 * scenes shrink it (accuracy protection). bench_ablation_ism
 * measures the trade-off.
 */

#ifndef ASV_CORE_SEQUENCER_HH
#define ASV_CORE_SEQUENCER_HH

#include <cstdint>
#include <memory>

#include "image/image.hh"

namespace asv::core
{

/** Decides which frames run full DNN inference. */
class KeyFrameSequencer
{
  public:
    virtual ~KeyFrameSequencer() = default;

    /**
     * Called once per frame in order; returns true if this frame
     * must be a key frame. Implementations may inspect the frame.
     */
    virtual bool isKeyFrame(const image::Image &left,
                            int64_t frame_index) = 0;

    /**
     * Notification that the pipeline promoted a frame to a key frame
     * that this sequencer did not request (e.g. the very first frame
     * after a reset, or a mid-stream resolution change). Stateful
     * policies must re-anchor their change detection on @p left or
     * their notion of "frames since the last key frame" drifts from
     * what actually ran. Called after isKeyFrame() returned false
     * for the same frame. Default: no-op (stateless policies).
     */
    virtual void keyFrameForced(const image::Image &left)
    {
        (void)left;
    }

    /** Forget all state (new sequence). */
    virtual void reset() = 0;
};

/** The paper's static policy: every PW-th frame is a key frame. */
class StaticSequencer : public KeyFrameSequencer
{
  public:
    explicit StaticSequencer(int propagation_window);

    bool isKeyFrame(const image::Image &left,
                    int64_t frame_index) override;
    void reset() override {}

  private:
    int window_;
};

/**
 * Adaptive policy: a key frame fires when the mean absolute
 * difference between the current frame and the last key frame
 * exceeds @p change_threshold (gray levels), or after @p max_window
 * frames regardless. The first frame is always a key frame.
 */
class AdaptiveSequencer : public KeyFrameSequencer
{
  public:
    AdaptiveSequencer(double change_threshold, int max_window);

    bool isKeyFrame(const image::Image &left,
                    int64_t frame_index) override;
    void keyFrameForced(const image::Image &left) override;
    void reset() override;

    /** Frames since the last key frame (diagnostics). */
    int framesSinceKey() const { return sinceKey_; }

  private:
    double threshold_;
    int maxWindow_;
    int sinceKey_ = 0;
    image::Image lastKey_;
};

/** Factory helpers. */
std::unique_ptr<KeyFrameSequencer> makeStaticSequencer(int pw);
std::unique_ptr<KeyFrameSequencer>
makeAdaptiveSequencer(double change_threshold, int max_window);

} // namespace asv::core

#endif // ASV_CORE_SEQUENCER_HH
