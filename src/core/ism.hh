/**
 * @file
 * The invariant-based stereo matching (ISM) algorithm (Sec. 3).
 *
 * ISM exploits the correspondence invariant: two pixels that are
 * projections of the same scene point remain a matched pair in every
 * frame, wherever they move. The pipeline (Fig. 5):
 *
 *  1. DNN inference on key frames produces a disparity map (here a
 *     pluggable key-frame source — data::oracleInference in the
 *     experiments, or any user-supplied stereo matcher).
 *  2. Reconstruct correspondences: every left pixel (x, y) with
 *     disparity d pairs with right pixel (x - d, y).
 *  3. Propagate correspondences to the next frame with dense optical
 *     flow on the left and right videos independently (Farnebäck;
 *     per-pixel motion, Sec. 3.3).
 *  4. Refine: the propagated pair seeds a short 1-D block-matching
 *     search (SAD) around the predicted disparity.
 *
 * Non-key frames therefore cost two (down-scaled) optical flows plus
 * a tiny guided search instead of a full DNN inference — about 87 M
 * arithmetic ops at qHD with the default parameters (Sec. 3.3),
 * 10^2-10^4 x cheaper than stereo DNN inference.
 */

#ifndef ASV_CORE_ISM_HH
#define ASV_CORE_ISM_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/buffer_pool.hh"
#include "common/exec_context.hh"
#include "common/thread_pool.hh"
#include "core/sequencer.hh"
#include "flow/block_motion.hh"
#include "flow/farneback.hh"
#include "image/image.hh"
#include "stereo/block_matching.hh"
#include "stereo/disparity.hh"
#include "stereo/matcher.hh"

namespace asv::core
{

/**
 * Motion-estimation algorithm used for correspondence propagation.
 * The paper selects dense Farnebäck flow and rules out block
 * matching for its block-granular vectors (Sec. 3.3); both are
 * available so the choice can be measured (bench_ablation_ism).
 */
enum class MotionEstimator
{
    Farneback,     //!< dense per-pixel optical flow (the paper's)
    BlockMatching, //!< classic block-granular motion
};

/** ISM algorithm parameters (Sec. 3.3 design decisions). */
struct IsmParams
{
    int propagationWindow = 4; //!< PW: key frame every PW frames
    int refineRadius = 2;      //!< 1-D search window half-width
    int blockRadius = 2;       //!< SAD block half-width (5x5)
    int maxDisparity = 64;
    int flowScale = 2;         //!< motion estimated at 1/flowScale
    flow::FarnebackParams flowParams{2, 2, 3, 1.2, 5};
    MotionEstimator motion = MotionEstimator::Farneback;
    bool medianPostprocess = false; //!< 3x3 median on non-key output
};

/** Per-frame output of the ISM pipeline. */
struct IsmFrameResult
{
    stereo::DisparityMap disparity;
    bool keyFrame = false;
    int64_t arithmeticOps = 0; //!< cost charged for this frame
};

/**
 * Key-frame disparity source as a plain callback — the pre-Matcher
 * shape of the "DNN inference" hook, kept for compatibility. New
 * code should pass a stereo::Matcher (makeMatcher()) instead.
 */
using KeyFrameFn = std::function<stereo::DisparityMap(
    const image::Image &left, const image::Image &right)>;

/**
 * Adapt a KeyFrameFn into the Matcher engine API (name "callback",
 * ops() = 0). The callback must satisfy the Matcher thread-safety
 * contract wherever the matcher is used concurrently
 * (StreamPipeline); it receives no ExecContext, so any parallelism
 * it uses is its own affair.
 */
std::shared_ptr<const stereo::Matcher>
makeCallbackMatcher(KeyFrameFn fn);

/**
 * The key/non-key decision, shared by IsmPipeline and StreamPipeline
 * so the two stay bit-identical by construction: consults the
 * sequencer, promotes the frame to a key frame when no previous
 * disparity exists, and reports forced promotions back through
 * KeyFrameSequencer::keyFrameForced(). Callers advance their frame
 * index afterwards.
 */
bool ismDecideKeyFrame(KeyFrameSequencer &sequencer,
                       const image::Image &left, int64_t frame_index,
                       bool has_prev_disparity);

/**
 * Stage 1 of a non-key frame: dense motion estimation between
 * consecutive frames of one camera, at 1/flowScale resolution,
 * upsampled and rescaled back (Sec. 3.3). Depends only on the two
 * input frames — never on a previous frame's *result* — which is
 * what lets StreamPipeline run it eagerly while the predecessor
 * frame is still in flight. The resize pre-stages fan out on
 * @p ctx's pool.
 */
flow::FlowField ismFlow(const image::Image &from,
                        const image::Image &to, const IsmParams &p,
                        const ExecContext &ctx);

/** ismFlow() on the process-global pool (legacy signature). */
flow::FlowField ismFlow(const image::Image &from,
                        const image::Image &to, const IsmParams &p);

/**
 * Stages 2-4 of a non-key frame: reconstruct correspondence pairs
 * from the predecessor's disparity map, move both endpoints by the
 * per-camera flows, fill scatter holes from row neighbors, and
 * refine with the guided 1-D SAD search (plus the optional median).
 * This is the only part of a non-key frame that depends on the
 * predecessor's output.
 *
 * @param prev_disparity disparity of the previous frame; must be
 *                       non-empty and match the pair's dimensions
 * @param refiner        optional guided engine for the refinement
 *                       step: when non-null and guided(), the
 *                       propagated estimate seeds its computeGuided()
 *                       (e.g. the range-pruned streaming SGM,
 *                       makeMatcher("sgm", "rangePrune=1")) instead
 *                       of the default 1-D SAD search
 */
stereo::DisparityMap ismPropagate(const image::Image &left,
                                  const image::Image &right,
                                  const stereo::DisparityMap &prev_disparity,
                                  const flow::FlowField &flow_l,
                                  const flow::FlowField &flow_r,
                                  const IsmParams &p,
                                  const ExecContext &ctx,
                                  const stereo::Matcher *refiner = nullptr);

/** ismPropagate() on the process-global pool (legacy signature). */
stereo::DisparityMap ismPropagate(const image::Image &left,
                                  const image::Image &right,
                                  const stereo::DisparityMap &prev_disparity,
                                  const flow::FlowField &flow_l,
                                  const flow::FlowField &flow_r,
                                  const IsmParams &p);

/**
 * Stateful ISM pipeline over a stereo video. Feed frames in order;
 * every propagationWindow-th frame (starting with the first) runs
 * the key-frame source, the rest are propagated and refined.
 *
 * A frame whose dimensions differ from the previous pair's resets
 * the temporal state and runs as a (forced) key frame; forced key
 * frames the sequencer did not request are reported back through
 * KeyFrameSequencer::keyFrameForced() so stateful policies stay in
 * sync with what actually executed.
 */
class IsmPipeline
{
  public:
    /**
     * Key frames run @p key_frame_matcher (any registered engine —
     * see stereo::makeMatcher). Static cadence from
     * params.propagationWindow.
     */
    IsmPipeline(IsmParams params,
                std::shared_ptr<const stereo::Matcher> key_frame_matcher);

    /**
     * Matcher key-frame source with a custom sequencing policy and
     * optionally an injected pool. A null @p pool creates a private
     * one sized by ASV_THREADS/hardware_concurrency; pass a shared
     * pool to cap total thread count across many pipelines (the
     * per-request serving pattern) or to control sizing explicitly.
     */
    IsmPipeline(IsmParams params,
                std::shared_ptr<const stereo::Matcher> key_frame_matcher,
                std::unique_ptr<KeyFrameSequencer> sequencer,
                std::shared_ptr<ThreadPool> pool = nullptr);

    /** Compatibility: raw-callback key-frame source. */
    IsmPipeline(IsmParams params, KeyFrameFn key_frame_source);

    /** Compatibility: raw callback + custom key-frame policy. */
    IsmPipeline(IsmParams params, KeyFrameFn key_frame_source,
                std::unique_ptr<KeyFrameSequencer> sequencer);

    /** Process the next frame of the stereo video. */
    IsmFrameResult processFrame(const image::Image &left,
                                const image::Image &right);

    /**
     * Replace the non-key refinement engine (null restores the
     * default guided 1-D SAD search). A guided() == true engine —
     * e.g. makeMatcher("sgm", "rangePrune=1") — receives each
     * non-key frame's propagated disparity as its computeGuided()
     * seed, turning non-key frames into range-pruned SGM solves.
     * Call between frames, not concurrently with processFrame().
     */
    void
    setRefiner(std::shared_ptr<const stereo::Matcher> refiner)
    {
        refiner_ = std::move(refiner);
    }

    /** Forget all temporal state (start of a new sequence). */
    void reset();

    const IsmParams &params() const { return params_; }

    /** The key-frame engine. */
    const stereo::Matcher &matcher() const { return *keyFrameSource_; }

    /**
     * The pool this instance's kernels fan out on, and nowhere else
     * — private by default (sized by ASV_THREADS at construction),
     * or the one injected at construction. Never
     * ThreadPool::global().
     */
    ThreadPool &pool() const { return *pool_; }

    /**
     * The buffer arena every frame's kernels recycle through —
     * private to this instance, so concurrent pipelines never
     * contend on shelves. Its stats() expose the steady-state
     * contract: after the warm-up frame, hits dominate and misses
     * stay flat.
     */
    BufferPool &buffers() const { return *buffers_; }

  private:
    IsmParams params_;
    std::shared_ptr<const stereo::Matcher> keyFrameSource_;
    std::shared_ptr<const stereo::Matcher> refiner_; //!< null = SAD
    std::unique_ptr<KeyFrameSequencer> sequencer_;
    std::shared_ptr<ThreadPool> pool_;
    std::shared_ptr<BufferPool> buffers_ =
        std::make_shared<BufferPool>();
    int64_t frameIndex_ = 0;
    image::Image prevLeft_;
    image::Image prevRight_;
    stereo::DisparityMap prevDisparity_;
};

/**
 * Arithmetic-op count of one non-key frame at the given resolution
 * (Sec. 3.3's "about 87 million operations" at qHD with defaults of
 * flowScale = 4): two optical flows at reduced resolution, the
 * correspondence scatter, and the guided block-matching refinement.
 */
int64_t nonKeyFrameOps(int width, int height, const IsmParams &p);

} // namespace asv::core

#endif // ASV_CORE_ISM_HH
