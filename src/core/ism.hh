/**
 * @file
 * The invariant-based stereo matching (ISM) algorithm (Sec. 3).
 *
 * ISM exploits the correspondence invariant: two pixels that are
 * projections of the same scene point remain a matched pair in every
 * frame, wherever they move. The pipeline (Fig. 5):
 *
 *  1. DNN inference on key frames produces a disparity map (here a
 *     pluggable key-frame source — data::oracleInference in the
 *     experiments, or any user-supplied stereo matcher).
 *  2. Reconstruct correspondences: every left pixel (x, y) with
 *     disparity d pairs with right pixel (x - d, y).
 *  3. Propagate correspondences to the next frame with dense optical
 *     flow on the left and right videos independently (Farnebäck;
 *     per-pixel motion, Sec. 3.3).
 *  4. Refine: the propagated pair seeds a short 1-D block-matching
 *     search (SAD) around the predicted disparity.
 *
 * Non-key frames therefore cost two (down-scaled) optical flows plus
 * a tiny guided search instead of a full DNN inference — about 87 M
 * arithmetic ops at qHD with the default parameters (Sec. 3.3),
 * 10^2-10^4 x cheaper than stereo DNN inference.
 */

#ifndef ASV_CORE_ISM_HH
#define ASV_CORE_ISM_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "core/sequencer.hh"
#include "flow/block_motion.hh"
#include "flow/farneback.hh"
#include "image/image.hh"
#include "stereo/block_matching.hh"
#include "stereo/disparity.hh"

namespace asv::core
{

/**
 * Motion-estimation algorithm used for correspondence propagation.
 * The paper selects dense Farnebäck flow and rules out block
 * matching for its block-granular vectors (Sec. 3.3); both are
 * available so the choice can be measured (bench_ablation_ism).
 */
enum class MotionEstimator
{
    Farneback,     //!< dense per-pixel optical flow (the paper's)
    BlockMatching, //!< classic block-granular motion
};

/** ISM algorithm parameters (Sec. 3.3 design decisions). */
struct IsmParams
{
    int propagationWindow = 4; //!< PW: key frame every PW frames
    int refineRadius = 2;      //!< 1-D search window half-width
    int blockRadius = 2;       //!< SAD block half-width (5x5)
    int maxDisparity = 64;
    int flowScale = 2;         //!< motion estimated at 1/flowScale
    flow::FarnebackParams flowParams{2, 2, 3, 1.2, 5};
    MotionEstimator motion = MotionEstimator::Farneback;
    bool medianPostprocess = false; //!< 3x3 median on non-key output
};

/** Per-frame output of the ISM pipeline. */
struct IsmFrameResult
{
    stereo::DisparityMap disparity;
    bool keyFrame = false;
    int64_t arithmeticOps = 0; //!< cost charged for this frame
};

/**
 * Key-frame disparity source: the "DNN inference" step. Receives the
 * left/right images and returns a dense disparity map.
 */
using KeyFrameFn = std::function<stereo::DisparityMap(
    const image::Image &left, const image::Image &right)>;

/**
 * Stateful ISM pipeline over a stereo video. Feed frames in order;
 * every propagationWindow-th frame (starting with the first) runs
 * the key-frame source, the rest are propagated and refined.
 */
class IsmPipeline
{
  public:
    /** Static key-frame cadence from params.propagationWindow. */
    IsmPipeline(IsmParams params, KeyFrameFn key_frame_source);

    /** Custom key-frame policy (e.g. AdaptiveSequencer). */
    IsmPipeline(IsmParams params, KeyFrameFn key_frame_source,
                std::unique_ptr<KeyFrameSequencer> sequencer);

    /** Process the next frame of the stereo video. */
    IsmFrameResult processFrame(const image::Image &left,
                                const image::Image &right);

    /** Forget all temporal state (start of a new sequence). */
    void reset();

    const IsmParams &params() const { return params_; }

  private:
    flow::FlowField estimateFlow(const image::Image &from,
                                 const image::Image &to) const;

    IsmParams params_;
    KeyFrameFn keyFrameSource_;
    std::unique_ptr<KeyFrameSequencer> sequencer_;
    int64_t frameIndex_ = 0;
    image::Image prevLeft_;
    image::Image prevRight_;
    stereo::DisparityMap prevDisparity_;
};

/**
 * Arithmetic-op count of one non-key frame at the given resolution
 * (Sec. 3.3's "about 87 million operations" at qHD with defaults of
 * flowScale = 4): two optical flows at reduced resolution, the
 * correspondence scatter, and the guided block-matching refinement.
 */
int64_t nonKeyFrameOps(int width, int height, const IsmParams &p);

} // namespace asv::core

#endif // ASV_CORE_ISM_HH
