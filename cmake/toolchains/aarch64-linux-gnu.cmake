# Cross toolchain: x86-64 host -> aarch64-linux-gnu target, with
# qemu-user as the ctest launcher so the NEON kernel table runs on
# every PR without Arm hardware.
#
#   apt install g++-aarch64-linux-gnu qemu-user libgtest-dev
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake \
#     -DASV_GTEST_SOURCE_DIR=/usr/src/googletest
#   cmake --build build-aarch64 -j
#   ASV_SIMD=neon ctest --test-dir build-aarch64
set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# qemu-user runs the test binaries; -L points it at the target's
# loader and shared libraries.
set(CMAKE_CROSSCOMPILING_EMULATOR
    "qemu-aarch64;-L;/usr/aarch64-linux-gnu")

set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)
