#!/usr/bin/env python3
"""Docs gate: markdown link checker + header comment lint.

Two checks, no third-party dependencies:

1. Every relative link and image reference in the repo's markdown
   files (README.md, docs/, and the top-level record files) must
   resolve to an existing file or directory. External links
   (http/https/mailto) and pure #fragments are not fetched. A
   fragment on a local markdown link (docs/FOO.md#section) checks
   that the target file contains a matching heading.

2. Every public header under src/ (*.hh) must open with a
   doxygen-style comment: a `/**` block containing `@file` within
   the first few lines. This is the convention the docs tree links
   into (docs/ARCHITECTURE.md points at header comments as the
   per-subsystem reference), so it is enforced, not aspirational.

Exit 0 when clean; prints one line per violation and exits 1
otherwise.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

MARKDOWN_ROOTS = ["README.md", "ROADMAP.md", "PAPER.md", "CHANGES.md",
                  "ISSUE.md"]
MARKDOWN_DIRS = ["docs"]

# [text](target) and ![alt](target); ignore inline code spans.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchors of every heading in a markdown file."""
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        text = line.lstrip("#").strip()
        text = re.sub(r"`([^`]*)`", r"\1", text)
        anchor = re.sub(r"[^\w\- ]", "", text.lower())
        anchors.add(anchor.replace(" ", "-"))
    return anchors


def check_markdown(path: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = CODE_SPAN_RE.sub("", line)
        for m in LINK_RE.finditer(stripped):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue  # same-file fragment; heading set below
            target, _, fragment = target.partition("#")
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(ROOT)}:{lineno}: "
                              f"broken link: {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment.lower() not in heading_anchors(resolved):
                    errors.append(
                        f"{path.relative_to(ROOT)}:{lineno}: "
                        f"missing anchor: {target}#{fragment}")
    return errors


def check_header_comment(path: Path) -> list[str]:
    head = path.read_text(encoding="utf-8").splitlines()[:5]
    if any("@file" in line for line in head) and \
            any(line.strip().startswith("/**") for line in head):
        return []
    return [f"{path.relative_to(ROOT)}: missing doxygen-style "
            f"/** ... @file header comment in the first 5 lines"]


def main() -> int:
    md_files = [ROOT / name for name in MARKDOWN_ROOTS
                if (ROOT / name).exists()]
    for d in MARKDOWN_DIRS:
        md_files += sorted((ROOT / d).glob("**/*.md"))

    errors = []
    for md in md_files:
        errors += check_markdown(md)
    for hh in sorted((ROOT / "src").glob("**/*.hh")):
        errors += check_header_comment(hh)

    for e in errors:
        print(e)
    checked = len(md_files) + len(list((ROOT / "src").glob("**/*.hh")))
    if errors:
        print(f"{len(errors)} problem(s) across {checked} files",
              file=sys.stderr)
        return 1
    print(f"docs check passed ({len(md_files)} markdown files, "
          f"{len(list((ROOT / 'src').glob('**/*.hh')))} headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
