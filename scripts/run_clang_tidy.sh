#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library sources using
# the compile_commands.json of an existing build directory.
#
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir defaults to ./build and must have been configured
# already (CMAKE_EXPORT_COMPILE_COMMANDS is always on — see
# CMakeLists.txt). Scope is src/**/*.cc: tests and benches follow the
# same rules but depend on gtest/benchmark headers that are not
# tidy-clean, so the gate covers the shipped library.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "error: $BUILD_DIR/compile_commands.json not found;" \
         "configure first: cmake -B $BUILD_DIR -S ." >&2
    exit 2
fi

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null; then
    echo "error: $TIDY not found (set CLANG_TIDY to override)" >&2
    exit 2
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "clang-tidy ($("$TIDY" --version | head -1)) over" \
     "${#SOURCES[@]} files"

# run-clang-tidy parallelizes when available; otherwise run serially.
if command -v run-clang-tidy >/dev/null; then
    run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" \
        -quiet "$@" "${SOURCES[@]}"
else
    "$TIDY" -p "$BUILD_DIR" --quiet "$@" "${SOURCES[@]}"
fi
echo "clang-tidy: clean"
