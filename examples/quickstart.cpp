/**
 * @file
 * Quickstart: the ASV public API in one tour.
 *
 * 1. Build a stereo DNN workload from the zoo and inspect its op
 *    distribution (the Fig. 3 quantities).
 * 2. Simulate it on the accelerator under the four variants
 *    (Baseline / DCT / ConvR / ILAR).
 * 3. Run the system-level simulation (ISM + DCO, Fig. 10).
 * 4. Run the functional ISM pipeline on a tiny generated stereo
 *    video and report its three-pixel error against ground truth.
 *    The key-frame engine comes from the Matcher registry and is
 *    selected on the command line.
 *
 * Usage: quickstart [engine] [engine-options]
 *   engine          oracle (default) | sgm | bm | guided | ...
 *   engine-options  "key=value,..." for the engine's factory
 *   e.g.: quickstart sgm maxDisparity=48,p2=60
 */

#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "core/asv_system.hh"
#include "core/ism.hh"
#include "data/oracle.hh"
#include "data/scene.hh"
#include "dnn/zoo.hh"
#include "sim/accelerator.hh"
#include "stereo/matcher.hh"

int
main(int argc, char **argv)
{
    using namespace asv;

    const std::string engine = argc > 1 ? argv[1] : "oracle";
    const std::string engine_opts = argc > 2 ? argv[2] : "";

    // ---- 1. Workload inspection -------------------------------
    dnn::Network net = dnn::zoo::buildFlowNetC();
    const dnn::NetworkStats stats = net.stats();
    std::printf("network: %s\n", net.name().c_str());
    std::printf("  layers:        %zu\n", net.numLayers());
    std::printf("  total MACs:    %.2f G\n", stats.totalMacs / 1e9);
    std::printf("  deconv MACs:   %.2f G (%.1f%% of all ops)\n",
                stats.deconvMacs / 1e9,
                100.0 * stats.deconvFraction());
    std::printf("  deconv zeros:  %.1f%% of deconv MACs are wasted "
                "on inserted zeros\n",
                100.0 * stats.deconvZeroMacs /
                    double(stats.deconvMacs));

    // ---- 2. Accelerator variants ------------------------------
    sched::HardwareConfig hw; // 24x24 PEs, 1.5 MB, Sec. 6.1
    std::printf("\naccelerator: %dx%d PEs @ %.1f GHz, %.1f MB "
                "SRAM, %.1f GB/s DRAM\n",
                hw.peRows, hw.peCols, hw.clockGhz,
                hw.bufferBytes / 1048576.0, hw.dramGbps);

    const sim::NetworkCost base =
        sim::simulateNetwork(net, hw, sim::Variant::Baseline);
    for (auto v : {sim::Variant::Baseline, sim::Variant::Dct,
                   sim::Variant::ConvR, sim::Variant::Ilar}) {
        const sim::NetworkCost c = sim::simulateNetwork(net, hw, v);
        std::printf("  %-8s %8.2f ms  %7.2f mJ  speedup %.2fx  "
                    "energy -%.0f%%\n",
                    sim::toString(v), 1e3 * c.seconds(hw),
                    1e3 * c.energy.total(),
                    double(base.cycles) / c.cycles,
                    100.0 * (1.0 - c.energy.total() /
                                       base.energy.total()));
    }

    // ---- 3. System level (ISM + DCO) --------------------------
    std::printf("\nsystem variants (PW-4, qHD OF/BM):\n");
    const core::SystemResult sys_base = core::simulateSystem(
        net, hw, core::SystemVariant::Baseline);
    for (auto v : {core::SystemVariant::Baseline,
                   core::SystemVariant::IsmOnly,
                   core::SystemVariant::DcoOnly,
                   core::SystemVariant::IsmDco}) {
        const core::SystemResult r =
            core::simulateSystem(net, hw, v);
        std::printf("  %-8s %8.2f ms/frame  %7.2f mJ/frame  "
                    "%5.1f FPS  speedup %.2fx\n",
                    core::toString(v), 1e3 * r.average.seconds,
                    1e3 * r.average.energyJ, r.fps(),
                    sys_base.average.seconds / r.average.seconds);
    }

    // ---- 4. Functional ISM on generated stereo video ----------
    std::printf("\nfunctional ISM (PW-4, key-frame engine '%s') on a "
                "generated sequence:\n",
                engine.c_str());
    data::StereoSequence seq = data::generateSequence(
        data::SceneConfig{}, 8, /*seed=*/42);

    // The key-frame engine comes from the registry: the calibrated
    // oracle standing in for a trained network by default (DESIGN.md
    // substitution #1), or any classical engine by name.
    std::shared_ptr<stereo::Matcher> key_engine;
    try {
        key_engine = stereo::makeMatcher(
            engine, engine == "oracle" && engine_opts.empty()
                        ? "network=FlowNetC,seed=7"
                        : engine_opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    int frame_idx = 0;
    if (auto *oracle_engine =
            dynamic_cast<data::OracleMatcher *>(key_engine.get())) {
        oracle_engine->bindGroundTruth(
            [&](const image::Image &, const image::Image &) {
                return seq.frames[frame_idx].gtDisparity;
            });
    }

    core::IsmParams params;
    params.propagationWindow = 4;
    core::IsmPipeline ism(params, key_engine);

    double worst = 0.0;
    for (size_t t = 0; t < seq.frames.size(); ++t) {
        frame_idx = static_cast<int>(t);
        const auto &f = seq.frames[t];
        const core::IsmFrameResult r =
            ism.processFrame(f.left, f.right);
        const double err = stereo::badPixelRate(
            r.disparity, f.gtDisparity, 3.0, /*margin=*/6);
        worst = std::max(worst, err);
        std::printf("  frame %zu (%s): 3-pixel error %.2f%%"
                    "  (%lld Mops)\n",
                    t, r.keyFrame ? "key" : "non-key", err,
                    static_cast<long long>(r.arithmeticOps / 1000000));
    }
    std::printf("  worst frame error: %.2f%%\n", worst);
    return 0;
}
