/**
 * @file
 * Interactive scheduler exploration tool: pick a zoo network and a
 * hardware configuration on the command line and get the per-layer
 * schedule chosen by the constrained optimizer — tile sizes, reuse
 * order, rounds, DRAM traffic and the latency split between compute
 * and memory. The tool a performance engineer would reach for when
 * porting a new stereo DNN to the accelerator.
 *
 * Usage: scheduler_explorer [network] [peDim] [bufferMB]
 *   network:  DispNet | FlowNetC | GC-Net | PSMNet | DCGAN | ...
 *   peDim:    PE array dimension (default 24)
 *   bufferMB: on-chip buffer in MB (default 1.5)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "deconv/transform.hh"
#include "dnn/zoo.hh"
#include "sim/accelerator.hh"

int
main(int argc, char **argv)
{
    using namespace asv;

    const std::string name = argc > 1 ? argv[1] : "FlowNetC";
    sched::HardwareConfig hw;
    if (argc > 2)
        hw.peRows = hw.peCols = std::atoi(argv[2]);
    if (argc > 3)
        hw.bufferBytes =
            int64_t(std::atof(argv[3]) * 1024 * 1024);

    const dnn::Network net = dnn::zoo::buildByName(name);
    std::printf("network %s on %dx%d PEs, %.2f MB buffer, "
                "%.1f GB/s\n\n",
                net.name().c_str(), hw.peRows, hw.peCols,
                hw.bufferBytes / 1048576.0, hw.dramGbps);

    const auto cost =
        sim::simulateNetwork(net, hw, sim::Variant::Ilar);

    std::printf("%-22s %-8s %10s %10s %8s %7s %9s %6s %5s\n",
                "layer", "kind", "cycles", "MACs(M)", "DRAM-MB",
                "rounds", "tile-span", "order", "ILAR");
    for (const auto &l : cost.layers) {
        if (l.sched.latencyCycles == 0)
            continue;
        const char *order =
            l.sched.order == sched::ReuseOrder::IfmapResident
                ? "ifmap"
                : "wght";
        std::printf("%-22s %-8s %10lld %10.1f %8.2f %7d %9d "
                    "%6s %5s\n",
                    l.name.c_str(), dnn::toString(l.kind),
                    (long long)l.sched.latencyCycles,
                    l.sched.macs / 1e6,
                    l.sched.traffic.total() / 1048576.0,
                    l.sched.rounds, l.sched.tileRows, order,
                    l.sched.usedIlar ? "yes" : "-");
    }

    std::printf("\nTOTAL: %.2f ms, %.1f GMACs, %.1f MB DRAM, "
                "%.2f mJ (%.1f FPS)\n",
                1e3 * cost.seconds(hw), cost.macs / 1e9,
                cost.traffic.total() / 1048576.0,
                1e3 * cost.energy.total(), cost.fps(hw));
    std::printf("energy: mac %.2f + rf %.2f + sram %.2f + dram "
                "%.2f + scalar %.2f + leak %.2f mJ\n",
                1e3 * cost.energy.macJ, 1e3 * cost.energy.rfJ,
                1e3 * cost.energy.sramJ, 1e3 * cost.energy.dramJ,
                1e3 * cost.energy.scalarJ,
                1e3 * cost.energy.leakageJ);
    return 0;
}
