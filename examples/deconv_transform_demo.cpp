/**
 * @file
 * The deconvolution transformation, walked through on the paper's
 * own Fig. 6 example: a 3x3 ifmap (A..I) deconvolved with a 3x3
 * kernel (a..i) at stride 2.
 *
 * Prints the four sub-kernels (Appendix A), executes both the
 * standard path (zero-insertion upsample + dense convolution) and
 * the transformed path (four dense sub-convolutions + gather),
 * verifies they agree exactly, and reports the arithmetic saved.
 */

#include <cstdio>

#include "deconv/transform.hh"
#include "dnn/layer.hh"
#include "tensor/deconv.hh"

int
main()
{
    using namespace asv;
    using tensor::Shape;
    using tensor::Tensor;

    // Fig. 6 operands: ifmap A..I = 1..9, kernel a..i = 1..9.
    Tensor ifmap({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor kernel({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    const tensor::DeconvSpec spec =
        tensor::DeconvSpec::uniform(2, 2, 1);

    std::printf("== deconvolution transformation demo (Fig. 6) "
                "==\n\n");

    // Decompose and print sub-kernels.
    dnn::LayerDesc layer;
    layer.name = "fig6";
    layer.kind = dnn::LayerKind::Deconv;
    layer.inChannels = layer.outChannels = 1;
    layer.inSpatial = {3, 3};
    layer.kernel = {3, 3};
    layer.stride = {2, 2};
    layer.pad = {1, 1};
    const auto t = deconv::transformLayer(layer);

    const char *names = "abcdefghi";
    std::printf("original 3x3 kernel:\n");
    for (int r = 0; r < 3; ++r)
        std::printf("  %c %c %c\n", names[3 * r], names[3 * r + 1],
                    names[3 * r + 2]);
    std::printf("\nsub-kernels (Appendix A):\n");
    for (size_t k = 0; k < t.subConvs.size(); ++k) {
        const auto &sc = t.subConvs[k];
        const Tensor sk =
            deconv::extractSubKernel(kernel, sc, {2, 2});
        std::printf("  S%zu (%lldx%lld):", k,
                    (long long)sc.dims[0].taps,
                    (long long)sc.dims[1].taps);
        for (int64_t i = 0; i < sk.size(); ++i)
            std::printf(" %c",
                        names[int(sk.flat()[i]) - 1]);
        std::printf("\n");
    }

    // Execute both paths.
    tensor::ConvStats dense_stats, trans_stats;
    const Tensor ref = deconvNd(ifmap, kernel, spec, &dense_stats);
    const Tensor got = deconv::transformedDeconv(ifmap, kernel, spec,
                                                 &trans_stats);

    std::printf("\n5x5 ofmap (standard deconvolution):\n");
    for (int64_t y = 0; y < 5; ++y) {
        std::printf("  ");
        for (int64_t x = 0; x < 5; ++x)
            std::printf("%6.0f", ref.at({0, y, x}));
        std::printf("\n");
    }
    std::printf("\ntransformed path matches exactly: %s "
                "(max diff %.2g)\n",
                got.allClose(ref) ? "yes" : "NO",
                got.maxAbsDiff(ref));
    std::printf("\narithmetic: dense %lld taps (%.0f%% on zero "
                "operands) vs transformed %lld taps\n",
                (long long)dense_stats.totalOps,
                100.0 * dense_stats.zeroFraction(),
                (long long)trans_stats.totalOps);
    std::printf("the transformation removes the zero work without "
                "any hardware change (Sec. 4.1).\n");
    return 0;
}
