/**
 * @file
 * Multi-stream serving demo: dozens of synthetic stereo cameras
 * through one asv::serve::Server, with a live heartbeat table.
 *
 * Every stream gets its own submitter thread flooding frames at the
 * server (blocking submit — global backpressure paces the clients),
 * while the heartbeat subscription prints per-stream fps, queue
 * depth, shed and completed counts as the run progresses. At the
 * end the demo *verifies* the serving contract and exits non-zero
 * on any violation:
 *
 *  - per-stream FIFO: tickets delivered dense and strictly in order;
 *  - zero loss: every accepted frame came back exactly once, as
 *    Ok, Shed or Failed — shedding is reported, never silent;
 *  - the delivered counts agree with the server's own stats.
 *
 * Shed key frames are reported separately: a *queued* key is never
 * evicted, but when the pending queue is wall-to-wall keys (only
 * under heavy oversubscription, as here) an incoming key is shed on
 * arrival rather than evicting an older key.
 *
 * Usage: serve_demo [--streams N] [--frames M] [--workers W]
 *        (defaults: 16 streams, 48 frames per stream)
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/scene.hh"
#include "serve/server.hh"
#include "stereo/matcher.hh"

namespace
{

using namespace asv;
using namespace asv::serve;

struct StreamLog
{
    std::vector<ServeResult> results; //!< dispatcher-thread writes
};

int
parseFlag(int argc, char **argv, const char *flag, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::atoi(argv[i + 1]);
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const int num_streams = parseFlag(argc, argv, "--streams", 16);
    const int num_frames = parseFlag(argc, argv, "--frames", 48);
    const int workers = parseFlag(argc, argv, "--workers", 0);
    if (num_streams < 1 || num_frames < 1) {
        std::fprintf(stderr, "need --streams >= 1, --frames >= 1\n");
        return 2;
    }

    // One short synthetic stereo video per stream (unique content:
    // per-stream seed).
    data::SceneConfig scene;
    scene.width = 96;
    scene.height = 64;
    scene.maxDisparity = 14.f;
    std::vector<data::StereoSequence> videos;
    videos.reserve(static_cast<size_t>(num_streams));
    for (int s = 0; s < num_streams; ++s)
        videos.push_back(data::generateSequence(
            scene, std::min(num_frames, 8),
            /*seed=*/1000 + static_cast<uint64_t>(s)));

    ServerConfig sc;
    sc.workers = workers;
    sc.queueCapacity = 64;
    sc.heartbeatPeriod = std::chrono::milliseconds(200);
    Server server(sc);

    const auto matcher =
        stereo::makeMatcher("bm", "maxDisparity=16,blockRadius=2");
    std::vector<StreamLog> logs(static_cast<size_t>(num_streams));
    std::vector<StreamId> ids;
    for (int s = 0; s < num_streams; ++s) {
        StreamConfig cfg;
        cfg.params.propagationWindow = 4;
        cfg.params.maxDisparity = 16;
        cfg.matcher = matcher;
        // A few "safety-critical" cameras outrank the rest.
        cfg.priority = s % 4 == 0 ? 1 : 0;
        cfg.maxQueued = 6;
        cfg.maxInFlight = 2;
        StreamLog &log = logs[static_cast<size_t>(s)];
        cfg.onResult = [&log](ServeResult &&r) {
            log.results.push_back(std::move(r));
        };
        ids.push_back(server.openStream(std::move(cfg)));
    }

    // Heartbeat table: one aggregate line plus the four busiest
    // streams, every period.
    const int token = server.subscribe([](const ServerStats &st) {
        double fps = 0.0;
        int64_t shed = 0;
        int depth = 0;
        for (const auto &s : st.streams) {
            fps += s.fps;
            shed += s.shed;
            depth += s.queueDepth;
        }
        std::printf("[hb] streams %zu  fps %7.1f  ring %d/%d  "
                    "queued %d  shed %lld  util %4.0f%%  pool-hit "
                    "%4.1f%%\n",
                    st.streams.size(), fps, st.ringDepth,
                    st.ringCapacity, depth,
                    static_cast<long long>(shed),
                    100.0 * st.utilization, 100.0 * st.poolHitRate);
    });

    std::printf("serving %d streams x %d frames (%d workers)\n",
                num_streams, num_frames, server.stats().workers);

    std::vector<std::thread> submitters;
    for (int s = 0; s < num_streams; ++s) {
        submitters.emplace_back([&, s] {
            const auto &video =
                videos[static_cast<size_t>(s)].frames;
            for (int f = 0; f < num_frames; ++f) {
                const auto &frame =
                    video[static_cast<size_t>(f) % video.size()];
                if (server.submit(ids[static_cast<size_t>(s)],
                                  frame.left, frame.right) !=
                    SubmitStatus::Accepted)
                    return; // server stopping — counted as rejected
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    server.drain();
    const ServerStats final_stats = server.stats();
    server.unsubscribe(token);
    server.stop();

    // ---- verify the serving contract ----
    int violations = 0;
    int64_t total_ok = 0;
    int64_t total_shed = 0;
    int64_t shed_keys = 0;
    for (int s = 0; s < num_streams; ++s) {
        const auto &results = logs[static_cast<size_t>(s)].results;
        if (results.size() != static_cast<size_t>(num_frames)) {
            std::fprintf(stderr,
                         "VIOLATION stream %d: %zu results for %d "
                         "accepted frames\n",
                         s, results.size(), num_frames);
            ++violations;
            continue;
        }
        for (size_t i = 0; i < results.size(); ++i) {
            const ServeResult &r = results[i];
            if (r.ticket != static_cast<int64_t>(i)) {
                std::fprintf(stderr,
                             "VIOLATION stream %d: FIFO broken at "
                             "position %zu (ticket %lld)\n",
                             s, i,
                             static_cast<long long>(r.ticket));
                ++violations;
                break;
            }
            if (r.status == ResultStatus::Shed) {
                ++total_shed;
                if (r.keyFrame)
                    ++shed_keys; // all-keys queue: shed on arrival
            } else if (r.status == ResultStatus::Ok) {
                ++total_ok;
            } else {
                std::fprintf(stderr, "stream %d frame %lld: %s\n", s,
                             static_cast<long long>(r.ticket),
                             r.error.c_str());
                ++violations;
            }
        }
    }

    if (final_stats.delivered != final_stats.accepted) {
        std::fprintf(stderr,
                     "VIOLATION: delivered %lld != accepted %lld\n",
                     static_cast<long long>(final_stats.delivered),
                     static_cast<long long>(final_stats.accepted));
        ++violations;
    }

    std::printf("\ndelivered %lld / accepted %lld  (ok %lld, shed "
                "%lld, of which keys on arrival %lld)\n",
                static_cast<long long>(final_stats.delivered),
                static_cast<long long>(final_stats.accepted),
                static_cast<long long>(total_ok),
                static_cast<long long>(total_shed),
                static_cast<long long>(shed_keys));
    std::printf("per-stream FIFO and zero-loss: %s\n",
                violations == 0 ? "verified" : "VIOLATED");
    return violations == 0 ? 0 : 1;
}
