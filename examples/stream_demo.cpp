/**
 * @file
 * Streaming ISM demo: the same stereo video through the serial
 * IsmPipeline loop and through StreamPipeline with frames in
 * flight, verifying bit-identical output and reporting the
 * throughput of each.
 *
 * Usage: stream_demo [frames] [pw] [workers] [maxInFlight]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ism.hh"
#include "core/stream_pipeline.hh"
#include "data/scene.hh"
#include "stereo/block_matching.hh"
#include "stereo/disparity.hh"

namespace
{

using namespace asv;

/** Pure, thread-safe key-frame source (stands in for the DNN). */
stereo::DisparityMap
keySource(const image::Image &left, const image::Image &right)
{
    stereo::BlockMatchingParams p;
    p.maxDisparity = 48;
    p.blockRadius = 3;
    return stereo::blockMatching(left, right, p);
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const int frames = argc > 1 ? std::atoi(argv[1]) : 16;
    const int pw = argc > 2 ? std::atoi(argv[2]) : 4;
    const int workers = argc > 3 ? std::atoi(argv[3]) : 0;
    const int max_in_flight = argc > 4 ? std::atoi(argv[4]) : 8;

    data::SceneConfig cfg;
    cfg.width = 256;
    cfg.height = 128;
    cfg.groundStrips = 4;
    cfg.numObjects = 5;
    const data::StereoSequence seq =
        data::generateSequence(cfg, frames, /*seed=*/99);

    core::IsmParams params;
    params.propagationWindow = pw;
    params.maxDisparity = 48;

    // Serial reference: one frame retires before the next starts.
    core::IsmPipeline serial(params, keySource);
    std::vector<core::IsmFrameResult> serial_results;
    const auto t_serial = std::chrono::steady_clock::now();
    for (const auto &f : seq.frames)
        serial_results.push_back(serial.processFrame(f.left, f.right));
    const double serial_s = secondsSince(t_serial);

    // Streaming: key inference and flow estimation overlap across
    // frames; only the propagation chain stays ordered.
    core::StreamParams sp;
    sp.maxInFlight = max_in_flight;
    sp.workers = workers;
    core::StreamPipeline stream(params, keySource, sp);
    const auto t_stream = std::chrono::steady_clock::now();
    for (const auto &f : seq.frames)
        stream.submit(f.left, f.right);
    const std::vector<core::IsmFrameResult> stream_results =
        stream.drain();
    const double stream_s = secondsSince(t_stream);

    std::printf("frame  kind     identical\n");
    bool all_identical = true;
    for (size_t i = 0; i < serial_results.size(); ++i) {
        const bool same =
            serial_results[i].keyFrame == stream_results[i].keyFrame &&
            serial_results[i].disparity.maxAbsDiff(
                stream_results[i].disparity) == 0.0;
        all_identical = all_identical && same;
        std::printf("%5zu  %-7s %s\n", i,
                    stream_results[i].keyFrame ? "key" : "non-key",
                    same ? "yes" : "NO");
    }

    std::printf("\nserial: %6.2f fps   stream (%d workers, %d in "
                "flight): %6.2f fps   speedup: %.2fx\n",
                frames / serial_s, stream.workers(),
                stream.maxInFlight(), frames / stream_s,
                serial_s / stream_s);
    std::printf("outputs bit-identical: %s\n",
                all_identical ? "yes" : "NO");
    return all_identical ? 0 : 1;
}
