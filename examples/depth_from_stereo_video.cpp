/**
 * @file
 * End-to-end "depth from stereo" on a street-style video — the
 * application the paper's introduction motivates (mobile robots, AR
 * headsets).
 *
 * Generates a KITTI-like stereo sequence, runs the ISM pipeline
 * (registry-selected key-frame engine + Farnebäck propagation +
 * guided refinement), triangulates disparity to metric depth with
 * the Bumblebee2 rig (Eq. 1), and writes PGM visualizations plus
 * PFM float maps of the final frame to /tmp/asv_depth_*.
 *
 * Usage: depth_from_stereo_video [frames] [pw] [engine] [engine-options]
 *   engine          oracle (default) | sgm | bm | guided | ...
 *   engine-options  "key=value,..." for the engine's factory
 *   e.g.: depth_from_stereo_video 8 4 sgm maxDisparity=64,p2=60
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "core/ism.hh"
#include "data/oracle.hh"
#include "data/scene.hh"
#include "image/io.hh"
#include "stereo/disparity.hh"
#include "stereo/matcher.hh"

int
main(int argc, char **argv)
{
    using namespace asv;

    const int frames = argc > 1 ? std::atoi(argv[1]) : 8;
    const int pw = argc > 2 ? std::atoi(argv[2]) : 4;
    const std::string engine = argc > 3 ? argv[3] : "oracle";
    const std::string engine_opts = argc > 4 ? argv[4] : "";

    // A street-style scene: striped ground plane, moving objects.
    data::SceneConfig cfg;
    cfg.width = 320;
    cfg.height = 128;
    cfg.groundStrips = 6;
    cfg.numObjects = 5;
    cfg.maxDisparity = 48.f;
    data::StereoSequence seq =
        data::generateSequence(cfg, frames, /*seed=*/2024);

    // Key-frame engine from the registry; the oracle (the PSMNet
    // stand-in) needs the sequence's ground truth bound to it.
    std::shared_ptr<stereo::Matcher> key_engine;
    try {
        key_engine = stereo::makeMatcher(
            engine, engine == "oracle" && engine_opts.empty()
                        ? "network=PSMNet,seed=11"
                        : engine_opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    size_t idx = 0;
    if (auto *oracle_engine =
            dynamic_cast<data::OracleMatcher *>(key_engine.get())) {
        oracle_engine->bindGroundTruth(
            [&](const image::Image &, const image::Image &) {
                return seq.frames[idx].gtDisparity;
            });
    }

    core::IsmParams params;
    params.propagationWindow = pw;
    params.maxDisparity = 64;
    core::IsmPipeline ism(params, key_engine);

    stereo::StereoRig rig; // Bumblebee2 intrinsics
    stereo::DisparityMap last;
    std::printf("frame  kind     3px-err   mean-depth(m)\n");
    for (idx = 0; idx < seq.frames.size(); ++idx) {
        const auto &f = seq.frames[idx];
        const auto r = ism.processFrame(f.left, f.right);
        last = r.disparity;

        double depth_sum = 0;
        int64_t n = 0;
        for (int64_t i = 0; i < r.disparity.size(); ++i) {
            const float d = r.disparity.data()[i];
            if (stereo::isValidDisparity(d) && d > 1.f) {
                depth_sum += rig.depthFromDisparity(d);
                ++n;
            }
        }
        std::printf("%5zu  %-7s %7.2f%% %14.2f\n", idx,
                    r.keyFrame ? "key" : "non-key",
                    stereo::badPixelRate(r.disparity,
                                         f.gtDisparity, 3.0, 6),
                    n ? depth_sum / n : 0.0);
    }

    // Dump the final frame for inspection.
    const auto &f = seq.frames.back();
    image::writePgm(f.left, "/tmp/asv_depth_left.pgm");
    image::writePgm(f.right, "/tmp/asv_depth_right.pgm");
    image::writePgm(last, "/tmp/asv_depth_disparity.pgm", 0.f,
                    cfg.maxDisparity);
    image::writePfm(last, "/tmp/asv_depth_disparity.pfm");

    // Metric depth map (clamped at 30 m for visualization).
    image::Image depth(last.width(), last.height());
    for (int64_t i = 0; i < last.size(); ++i) {
        const float d = last.data()[i];
        depth.flat()[i] =
            stereo::isValidDisparity(d) && d > 1.f
                ? float(std::min(rig.depthFromDisparity(d), 30.0))
                : 30.f;
    }
    image::writePgm(depth, "/tmp/asv_depth_meters.pgm", 0.f, 30.f);
    std::printf("\nwrote /tmp/asv_depth_{left,right,disparity,"
                "meters}.pgm and disparity.pfm\n");
    return 0;
}
