/**
 * @file
 * Generator for the README accuracy-vs-speed table: run the SGM
 * path variants (8-path reference, 5-path and 4-path single-sweep,
 * and the range-pruned coarse-to-fine mode seeded from the previous
 * frame's result) over a generated scene sequence and report the
 * three-pixel bad-pixel rate and output density per variant.
 *
 * Usage: sgm_accuracy_table [frames] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/exec_context.hh"
#include "common/rng.hh"
#include "data/scene.hh"
#include "stereo/disparity.hh"
#include "stereo/matcher.hh"

namespace
{

using namespace asv;

/** Fraction (percent) of pixels carrying a valid disparity. */
double
density(const stereo::DisparityMap &d)
{
    int64_t valid = 0;
    for (int y = 0; y < d.height(); ++y)
        for (int x = 0; x < d.width(); ++x)
            valid += stereo::isValidDisparity(d.at(x, y)) ? 1 : 0;
    const int64_t total = int64_t(d.width()) * d.height();
    return total ? 100.0 * double(valid) / double(total) : 0.0;
}

struct Variant
{
    const char *label;
    const char *opts;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace asv;

    const int frames = argc > 1 ? std::atoi(argv[1]) : 6;
    const uint64_t seed = argc > 2 ? uint64_t(std::atoll(argv[2])) : 42;

    data::SceneConfig cfg; // 256x128, disparities 4..40
    Rng rng(seed);
    data::Scene scene(cfg, rng);
    std::vector<data::StereoFrame> seq;
    seq.reserve(size_t(frames));
    for (int i = 0; i < frames; ++i)
        seq.push_back(scene.renderAndAdvance(rng));

    const Variant variants[] = {
        {"8-path (default)", "maxDisparity=48"},
        {"5-path", "maxDisparity=48,paths=5"},
        {"4-path", "maxDisparity=48,paths=4"},
        {"range-pruned", "maxDisparity=48,rangePrune=1"},
    };

    // Windows are undefined at the borders; match the metric margin
    // to the disparity range so every variant is scored on the same
    // well-defined interior.
    const int margin = 8;

    std::printf("| Engine | bad-pixel %% (>3px) | density %% |\n");
    std::printf("| ------ | ------------------ | --------- |\n");
    for (const Variant &v : variants) {
        const auto matcher = stereo::makeMatcher("sgm", v.opts);
        double bad = 0.0, dens = 0.0;
        stereo::DisparityMap prev;
        for (const data::StereoFrame &f : seq) {
            stereo::DisparityMap d;
            if (matcher->guided() && !prev.empty()) {
                // Coarse-to-fine: the previous frame's map seeds
                // this frame's per-row search windows (what ISM
                // does with the propagated estimate).
                d = matcher->computeGuided(f.left, f.right, prev,
                                           ExecContext::global());
            } else {
                d = matcher->compute(f.left, f.right,
                                     ExecContext::global());
            }
            bad += stereo::badPixelRate(d, f.gtDisparity, 3.0, margin);
            dens += density(d);
            prev = std::move(d);
        }
        std::printf("| %s | %.2f | %.1f |\n", v.label,
                    bad / double(frames), dens / double(frames));
    }
    return 0;
}
